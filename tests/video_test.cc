// Temporal (video) tests over the scene-graph views: SQL across frames.

#include <gtest/gtest.h>

#include "lineage/lineage.h"
#include "multimodal/scene_graph.h"
#include "relational/catalog.h"
#include "sql/engine.h"

namespace kathdb::mm {
namespace {

class VideoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticVideo video;
    video.uri = "file://videos/test.svid";
    // Frame 0: person only. Frame 1: person + car. Frame 2: person
    // riding motorcycle. Frame 3: person holding gun.
    auto frame = [](std::vector<LatentObject> objs,
                    std::vector<LatentRelationship> rels) {
      SyntheticImage f;
      f.color_variance = 0.1;
      f.objects = std::move(objs);
      f.relationships = std::move(rels);
      return f;
    };
    video.frames.push_back(frame({{"person", 0, 0, 1, 1, {}}}, {}));
    video.frames.push_back(frame(
        {{"person", 0, 0, 1, 1, {}}, {"car", 0, 0, 1, 1, {}}}, {}));
    video.frames.push_back(frame({{"person", 0, 0, 1, 1, {}},
                                  {"motorcycle", 0, 0, 1, 1, {}}},
                                 {{0, "riding", 1}}));
    video.frames.push_back(frame(
        {{"person", 0, 0, 1, 1, {}}, {"gun", 0, 0, 1, 1, {}}},
        {{0, "holding", 1}}));
    SimulatedVlm vlm;
    ASSERT_TRUE(vlm.PopulateFromVideo(7, video, &catalog_, &lineage_).ok());
  }

  rel::Catalog catalog_;
  lineage::LineageStore lineage_;
};

TEST_F(VideoFixture, ObjectsPerFrameViaSql) {
  sql::SqlEngine engine(&catalog_);
  auto r = engine.Execute(
      "SELECT fid, COUNT(*) AS n FROM scene_objects WHERE vid = 7 "
      "GROUP BY fid ORDER BY fid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 4u);
  EXPECT_EQ(r.value().at(0, 1).AsInt(), 1);
  EXPECT_EQ(r.value().at(1, 1).AsInt(), 2);
}

TEST_F(VideoFixture, FirstAppearanceQuery) {
  sql::SqlEngine engine(&catalog_);
  auto r = engine.Execute(
      "SELECT MIN(fid) AS first FROM scene_objects WHERE vid = 7 AND "
      "cid = 'gun'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().at(0, 0).AsInt(), 3);
}

TEST_F(VideoFixture, RelationshipJoinAcrossViews) {
  sql::SqlEngine engine(&catalog_);
  auto r = engine.Execute(
      "SELECT r.fid FROM scene_relationships r "
      "JOIN scene_objects s ON r.oid_i = s.oid "
      "JOIN scene_objects o ON r.oid_j = o.oid "
      "WHERE r.vid = 7 AND r.pid = 'riding' AND s.cid = 'person' AND "
      "o.cid = 'motorcycle'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().at(0, 0).AsInt(), 2);
}

TEST_F(VideoFixture, PerFrameStatsIndependent) {
  auto calm = ComputeFrameStats(7, 0, catalog_);
  auto armed = ComputeFrameStats(7, 3, catalog_);
  ASSERT_TRUE(calm.ok());
  ASSERT_TRUE(armed.ok());
  EXPECT_EQ(calm->num_action_objects, 0);
  EXPECT_EQ(armed->num_action_objects, 1);  // the gun
}

TEST_F(VideoFixture, FrameRowsTraceToVideoUri) {
  auto objects = catalog_.Get("scene_objects").value();
  ASSERT_GT(objects->num_rows(), 0u);
  auto chain = lineage_.TraceToSources(objects->row_lid(0));
  bool reaches_video = false;
  for (const auto& e : chain) {
    if (e.src_uri.find("file://videos/test.svid") != std::string::npos ||
        e.src_uri.find("mem://frame") != std::string::npos) {
      reaches_video = true;
    }
  }
  EXPECT_TRUE(reaches_video);
}

}  // namespace
}  // namespace kathdb::mm
