// Concurrency tests for the shared components of the service layer:
// thread pool semantics, atomic usage metering, mutex-striped cache
// access, and lineage/registry appends under parallel queries. Run under
// the ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "fao/registry.h"
#include "lineage/lineage.h"
#include "llm/model.h"
#include "relational/catalog.h"
#include "service/result_cache.h"

namespace kathdb {
namespace {

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  common::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&count] { count.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, BoundedQueueShedsLoad) {
  common::ThreadPool pool(1, /*max_queue=*/2);
  std::atomic<bool> release{false};
  // Occupy the single worker so submissions stack up in the queue.
  ASSERT_TRUE(pool.TrySubmit([&release] {
    while (!release.load()) std::this_thread::yield();
  }));
  // Wait until the blocker has left the queue for a worker.
  while (pool.queue_depth() > 0) std::this_thread::yield();
  EXPECT_TRUE(pool.TrySubmit([] {}));
  EXPECT_TRUE(pool.TrySubmit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {})) << "third pending task must be shed";
  release.store(true);
  pool.Wait();
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    common::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&count] { count.fetch_add(1); }));
    }
  }  // destructor == Shutdown: drains, then joins
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  common::ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.TrySubmit([] {}));
}

// ----------------------------------------------------------- UsageMeter

TEST(UsageMeterConcurrencyTest, HammeredFromManyThreads) {
  llm::UsageMeter meter;
  llm::ModelSpec spec{"hammer", 1.0, 2.0, 1.0};  // $1/$2 per 1k tokens
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&meter, &spec] {
      for (int i = 0; i < kPerThread; ++i) meter.Record(spec, 10, 5);
    });
  }
  for (auto& t : threads) t.join();
  constexpr int64_t kCalls = kThreads * kPerThread;
  EXPECT_EQ(meter.total_calls(), kCalls);
  EXPECT_EQ(meter.total_prompt_tokens(), kCalls * 10);
  EXPECT_EQ(meter.total_completion_tokens(), kCalls * 5);
  EXPECT_EQ(meter.tokens_for("hammer"), kCalls * 15);
  // CAS-accumulated cost is exact, not merely approximate:
  // 10/1000*$1 + 5/1000*$2 = $0.02 per call.
  EXPECT_NEAR(meter.total_cost_usd(), kCalls * 0.02, 1e-6);
}

// ---------------------------------------------------------- ResultCache

TEST(ResultCacheConcurrencyTest, ParallelGetPut) {
  service::ResultCacheOptions opts;
  opts.shards = 8;
  opts.capacity = 256;  // force eviction churn under contention
  service::ResultCache cache(opts);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (uint64_t i = 0; i < 2000; ++i) {
        uint64_t key = (i * 7 + static_cast<uint64_t>(t)) % 512;
        if (auto hit = cache.Get(key)) {
          EXPECT_EQ(hit->text, std::to_string(key));
        } else {
          cache.Put(key, service::CacheEntry{nullptr, std::to_string(key)});
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  service::ResultCacheStats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, int64_t{kThreads} * 2000);
  EXPECT_LE(cache.size(), 256u);
}

// --------------------------------------------------------- LineageStore

TEST(LineageConcurrencyTest, ParallelDerivationsKeepLidsUnique) {
  lineage::LineageStore store;
  int64_t root = store.RecordIngest("table://t", "load_data", 1,
                                    lineage::LineageDataType::kTable);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::vector<int64_t>> lids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &lids, t, root] {
      for (int i = 0; i < kPerThread; ++i) {
        lids[t].push_back(store.RecordRowDerivation(root, "fn", 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<int64_t> unique;
  for (const auto& per_thread : lids) {
    for (int64_t lid : per_thread) {
      EXPECT_NE(lid, 0);
      EXPECT_TRUE(unique.insert(lid).second) << "duplicate lid " << lid;
    }
  }
  EXPECT_EQ(store.num_entries(), 1u + kThreads * kPerThread);
  // Every recorded edge still traces to the ingest root.
  for (int64_t lid : lids[0]) {
    auto trace = store.TraceToSources(lid);
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.back().src_uri, "table://t");
  }
}

// ----------------------------------------------------- FunctionRegistry

TEST(RegistryConcurrencyTest, ParallelVersionStampsAreMonotone) {
  fao::FunctionRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      fao::FunctionSpec spec;
      spec.name = "shared_fn";
      spec.template_id = "recency_score";
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_GT(registry.RegisterNewVersion(spec), 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  auto versions = registry.VersionsOf("shared_fn");
  ASSERT_EQ(versions.size(), size_t{kThreads} * kPerThread);
  for (size_t i = 0; i < versions.size(); ++i) {
    EXPECT_EQ(versions[i].ver_id, static_cast<int64_t>(i + 1));
  }
}

// -------------------------------------------------------- Catalog reads

TEST(CatalogConcurrencyTest, ParallelReadersAndScopedWriters) {
  rel::Catalog base;
  auto t = std::make_shared<rel::Table>(
      "movies", rel::Schema({{"x", rel::DataType::kInt}}));
  t->AppendRow({rel::Value::Int(1)});
  ASSERT_TRUE(base.Register(t).ok());

  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&base, w] {
      rel::ScopedCatalog scoped(&base);
      for (int i = 0; i < 300; ++i) {
        // Every worker materializes the same intermediate name: with a
        // per-query overlay this must never collide.
        auto inter = std::make_shared<rel::Table>(
            "scored", rel::Schema({{"w", rel::DataType::kInt}}));
        inter->AppendRow({rel::Value::Int(w)});
        scoped.Upsert(inter);
        auto got = scoped.Get("scored");
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value()->at(0, 0).AsInt(), w);
        EXPECT_TRUE(scoped.Get("movies").ok());
        EXPECT_TRUE(base.Has("movies"));
      }
      EXPECT_FALSE(base.Has("scored")) << "overlay leaked into base";
    });
  }
  for (auto& t2 : threads) t2.join();
}

}  // namespace
}  // namespace kathdb
