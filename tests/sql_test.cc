// Unit + integration tests for src/sql: tokenizer, parser, engine.

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "sql/engine.h"
#include "sql/parser.h"
#include "sql/token.h"

namespace kathdb::sql {
namespace {

using rel::Catalog;
using rel::DataType;
using rel::Schema;
using rel::Table;
using rel::Value;

// ------------------------------------------------------------- tokenizer

TEST(TokenizerTest, KeywordsIdentsNumbersStrings) {
  auto r = Tokenize("SELECT title, year FROM films WHERE x >= 1.5 "
                    "AND name = 'O''Brien'");
  ASSERT_TRUE(r.ok());
  const auto& toks = r.value();
  EXPECT_EQ(toks[0].type, TokenType::kKeyword);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].type, TokenType::kIdent);
  EXPECT_EQ(toks[1].text, "title");
  bool found_escaped = false;
  for (const auto& t : toks) {
    if (t.type == TokenType::kString) {
      EXPECT_EQ(t.text, "O'Brien");
      found_escaped = true;
    }
  }
  EXPECT_TRUE(found_escaped);
}

TEST(TokenizerTest, QualifiedIdentifierStaysOneToken) {
  auto r = Tokenize("films.title");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].text, "films.title");
}

TEST(TokenizerTest, CommentsSkipped) {
  auto r = Tokenize("SELECT 1 -- the answer\nFROM t");
  ASSERT_TRUE(r.ok());
  // SELECT 1 FROM t END = 5 tokens
  EXPECT_EQ(r.value().size(), 5u);
}

TEST(TokenizerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(TokenizerTest, CaseInsensitiveKeywords) {
  auto r = Tokenize("select * from t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].text, "SELECT");
}

// ---------------------------------------------------------------- parser

TEST(ParserTest, SimpleSelect) {
  auto r = ParseSql("SELECT title, year FROM films WHERE year > 1990 "
                    "ORDER BY year DESC LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = r.value().select;
  EXPECT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.from.table, "films");
  ASSERT_NE(s.where, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_EQ(s.limit.value(), 5u);
}

TEST(ParserTest, JoinWithOn) {
  auto r = ParseSql("SELECT f.title FROM films f JOIN posters p "
                    "ON f.title = p.title");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = r.value().select;
  EXPECT_EQ(s.from.alias, "f");
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].table.alias, "p");
  ASSERT_NE(s.joins[0].on, nullptr);
}

TEST(ParserTest, AggregatesAndGroupBy) {
  auto r = ParseSql("SELECT year, COUNT(*) AS n, AVG(score) FROM films "
                    "GROUP BY year HAVING n > 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = r.value().select;
  ASSERT_EQ(s.items.size(), 3u);
  EXPECT_FALSE(s.items[0].is_aggregate);
  EXPECT_TRUE(s.items[1].is_aggregate);
  EXPECT_EQ(s.items[1].alias, "n");
  EXPECT_EQ(s.items[2].agg_fn, "AVG");
  EXPECT_EQ(s.group_by.size(), 1u);
  ASSERT_NE(s.having, nullptr);
}

TEST(ParserTest, CreateTableAndInsert) {
  auto c = ParseSql("CREATE TABLE t (a INT, b STRING, c DOUBLE, d BOOL)");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().create.schema.num_columns(), 4u);

  auto i = ParseSql("INSERT INTO t VALUES (1, 'x', 2.5, TRUE), "
                    "(2, 'y', -1.0, FALSE)");
  ASSERT_TRUE(i.ok()) << i.status().ToString();
  EXPECT_EQ(i.value().insert.rows.size(), 2u);
  EXPECT_EQ(i.value().insert.rows[1][2].AsDouble(), -1.0);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseSql("SELEKT * FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t extra garbage here").ok());
}

TEST(ParserTest, LikeLoweredToContains) {
  auto r = ParseSql("SELECT * FROM t WHERE title LIKE '%gun%'");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().select.where->ToString().find("contains"),
            std::string::npos);
}

// ---------------------------------------------------------------- engine

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto films = std::make_shared<Table>(
        "films", Schema({{"title", DataType::kString},
                         {"year", DataType::kInt},
                         {"score", DataType::kDouble}}));
    films->AppendRow({Value::Str("Guilty by Suspicion"), Value::Int(1991),
                      Value::Double(0.99)});
    films->AppendRow({Value::Str("Clean and Sober"), Value::Int(1988),
                      Value::Double(0.97)});
    films->AppendRow({Value::Str("Quiet Meadow"), Value::Int(2005),
                      Value::Double(0.11)});
    films->AppendRow({Value::Str("Sunset Drift"), Value::Int(1991),
                      Value::Double(0.55)});
    ASSERT_TRUE(catalog_.Register(films).ok());

    auto posters = std::make_shared<Table>(
        "posters", Schema({{"title", DataType::kString},
                           {"boring", DataType::kBool}}));
    posters->AppendRow({Value::Str("Guilty by Suspicion"),
                        Value::Bool(true)});
    posters->AppendRow({Value::Str("Quiet Meadow"), Value::Bool(true)});
    posters->AppendRow({Value::Str("Sunset Drift"), Value::Bool(false)});
    ASSERT_TRUE(catalog_.Register(posters).ok());
  }

  Catalog catalog_;
};

TEST_F(SqlEngineTest, SelectStar) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT * FROM films");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 4u);
  EXPECT_EQ(r.value().schema().num_columns(), 3u);
}

TEST_F(SqlEngineTest, WhereOrderLimit) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute(
      "SELECT title FROM films WHERE year >= 1990 ORDER BY score DESC "
      "LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(r.value().at(0, 0).AsString(), "Guilty by Suspicion");
  EXPECT_EQ(r.value().at(1, 0).AsString(), "Sunset Drift");
}

TEST_F(SqlEngineTest, ComputedProjectionWithAlias) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT title, score * 100 AS pct FROM films "
                       "WHERE title = 'Quiet Meadow'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_TRUE(r.value().schema().HasColumn("pct"));
  EXPECT_NEAR(r.value().at(0, 1).AsDouble(), 11.0, 1e-9);
}

TEST_F(SqlEngineTest, JoinWithQualifiedColumns) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute(
      "SELECT f.title, p.boring FROM films f JOIN posters p "
      "ON f.title = p.title WHERE p.boring = TRUE ORDER BY f.title");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(r.value().at(0, 0).AsString(), "Guilty by Suspicion");
  EXPECT_EQ(r.value().at(1, 0).AsString(), "Quiet Meadow");
}

TEST_F(SqlEngineTest, GroupByWithHaving) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute(
      "SELECT year, COUNT(*) AS n, MAX(score) AS best FROM films "
      "GROUP BY year HAVING n > 1 ORDER BY year");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().at(0, 0).AsInt(), 1991);
  EXPECT_EQ(r.value().at(0, 1).AsInt(), 2);
  EXPECT_NEAR(r.value().at(0, 2).AsDouble(), 0.99, 1e-9);
}

TEST_F(SqlEngineTest, GlobalAggregates) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT COUNT(*) AS n, SUM(score) AS total, "
                       "MIN(year) AS first FROM films");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().at(0, 0).AsInt(), 4);
  EXPECT_NEAR(r.value().at(0, 1).AsDouble(), 2.62, 1e-9);
  EXPECT_EQ(r.value().at(0, 2).AsInt(), 1988);
}

TEST_F(SqlEngineTest, DistinctRemovesDuplicates) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT DISTINCT year FROM films");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 3u);
}

TEST_F(SqlEngineTest, LikeFilter) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT title FROM films WHERE title LIKE '%sober%'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().at(0, 0).AsString(), "Clean and Sober");
}

TEST_F(SqlEngineTest, CreateInsertSelectRoundTrip) {
  SqlEngine eng(&catalog_);
  ASSERT_TRUE(eng.Execute("CREATE TABLE notes (id INT, txt STRING)").ok());
  ASSERT_TRUE(
      eng.Execute("INSERT INTO notes VALUES (1, 'alpha'), (2, 'beta')").ok());
  auto r = eng.Execute("SELECT txt FROM notes WHERE id = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().at(0, 0).AsString(), "beta");
}

TEST_F(SqlEngineTest, InsertCoercesTypes) {
  SqlEngine eng(&catalog_);
  ASSERT_TRUE(eng.Execute("CREATE TABLE m (v DOUBLE)").ok());
  ASSERT_TRUE(eng.Execute("INSERT INTO m VALUES (3)").ok());
  auto r = eng.Execute("SELECT v FROM m");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().at(0, 0).type(), DataType::kDouble);
}

TEST_F(SqlEngineTest, UnknownTableFails) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT * FROM ghosts");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(SqlEngineTest, UnknownColumnIsSyntacticError) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT ghost FROM films");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsSyntacticError());
}

TEST_F(SqlEngineTest, AmbiguousColumnRejected) {
  SqlEngine eng(&catalog_);
  // `title` exists in both sides of the join -> must qualify.
  auto r = eng.Execute("SELECT boring FROM films f JOIN posters p "
                       "ON f.title = p.title WHERE title = 'x'");
  ASSERT_FALSE(r.ok());
}

TEST_F(SqlEngineTest, SelfJoinDisambiguatedByAlias) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute(
      "SELECT a.title, b.title FROM films a JOIN films b "
      "ON a.year = b.year WHERE a.title <> b.title");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 1991 pair both directions.
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST_F(SqlEngineTest, CrossJoin) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT COUNT(*) AS n FROM films CROSS JOIN posters");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().at(0, 0).AsInt(), 12);
}

TEST_F(SqlEngineTest, NonGroupedColumnRejected) {
  SqlEngine eng(&catalog_);
  auto r = eng.Execute("SELECT title, COUNT(*) FROM films GROUP BY year");
  EXPECT_FALSE(r.ok());
}

// Parameterized: ORDER BY direction x column sweeps keep row count and order.
struct OrderCase {
  const char* column;
  bool desc;
};

class OrderSweep : public ::testing::TestWithParam<OrderCase> {};

TEST_P(OrderSweep, OrderedOutputIsMonotone) {
  Catalog catalog;
  auto films = std::make_shared<Table>(
      "films", Schema({{"title", DataType::kString},
                       {"year", DataType::kInt},
                       {"score", DataType::kDouble}}));
  for (int i = 0; i < 50; ++i) {
    films->AppendRow({Value::Str("m" + std::to_string(i * 37 % 50)),
                      Value::Int(1980 + (i * 13) % 40),
                      Value::Double((i * 29 % 100) / 100.0)});
  }
  ASSERT_TRUE(catalog.Register(films).ok());
  SqlEngine eng(&catalog);
  const OrderCase& oc = GetParam();
  std::string sql = std::string("SELECT * FROM films ORDER BY ") +
                    oc.column + (oc.desc ? " DESC" : " ASC");
  auto r = eng.Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.value();
  ASSERT_EQ(t.num_rows(), 50u);
  auto idx = t.schema().IndexOf(oc.column);
  ASSERT_TRUE(idx.has_value());
  for (size_t i = 1; i < t.num_rows(); ++i) {
    int c = t.at(i - 1, *idx).Compare(t.at(i, *idx));
    if (oc.desc) {
      EXPECT_GE(c, 0);
    } else {
      EXPECT_LE(c, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, OrderSweep,
    ::testing::Values(OrderCase{"title", false}, OrderCase{"title", true},
                      OrderCase{"year", false}, OrderCase{"year", true},
                      OrderCase{"score", false}, OrderCase{"score", true}));

}  // namespace
}  // namespace kathdb::sql
