// End-to-end tests for query shapes beyond the paper's flagship query:
// filter-only, rank-only, metadata-only, and other subjective terms.

#include <gtest/gtest.h>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"

namespace kathdb {
namespace {

class QueryVariants : public ::testing::Test {
 protected:
  void SetUp() override {
    data::DatasetOptions opts;
    opts.num_movies = 24;
    auto ds = data::GenerateMovieDataset(opts);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::move(ds).value();
    db_ = std::make_unique<engine::KathDB>();
    ASSERT_TRUE(data::IngestDataset(dataset_, db_.get()).ok());
  }

  Result<engine::QueryOutcome> Run(const std::string& query,
                                   std::vector<std::string> replies = {}) {
    user_ = std::make_unique<llm::ScriptedUser>(std::move(replies));
    return db_->Query(query, user_.get());
  }

  data::MovieDataset dataset_;
  std::unique_ptr<engine::KathDB> db_;
  std::unique_ptr<llm::ScriptedUser> user_;
};

TEST_F(QueryVariants, FilterOnlyBoringPosters) {
  auto outcome = Run("Find the films where the poster should be 'boring'");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const rel::Table& r = outcome->result;
  ASSERT_GT(r.num_rows(), 0u);
  auto bidx = r.schema().IndexOf("boring_poster");
  ASSERT_TRUE(bidx.has_value());
  size_t expected = 0;
  for (const auto& t : dataset_.truth) {
    if (t.boring_poster) ++expected;
  }
  EXPECT_EQ(r.num_rows(), expected);
  for (size_t i = 0; i < r.num_rows(); ++i) {
    EXPECT_TRUE(r.at(i, *bidx).AsBool());
  }
  // No scoring nodes in the plan.
  for (const auto& n : outcome->physical_plan.nodes) {
    EXPECT_EQ(n.sig.name.find("gen_"), std::string::npos) << n.sig.name;
  }
  // Ranked by year descending (metadata fallback).
  auto yidx = *r.schema().IndexOf("year");
  for (size_t i = 1; i < r.num_rows(); ++i) {
    EXPECT_GE(r.at(i - 1, yidx).AsInt(), r.at(i, yidx).AsInt());
  }
}

TEST_F(QueryVariants, RankOnlyWithoutPosterFilter) {
  auto outcome = Run("Sort the films by how exciting they are",
                     {"plots with violent scenes", "OK"});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const rel::Table& r = outcome->result;
  // Nothing filtered: all movies present.
  EXPECT_EQ(r.num_rows(), dataset_.movie_table->num_rows());
  // No classify/filter nodes.
  for (const auto& n : outcome->physical_plan.nodes) {
    EXPECT_EQ(n.sig.name.find("classify_"), std::string::npos);
    EXPECT_EQ(n.sig.name.find("filter_"), std::string::npos);
  }
  // Ordered by the exciting score; the violent anchors lead.
  auto tidx = *r.schema().IndexOf("title");
  std::set<std::string> top2 = {r.at(0, tidx).AsString(),
                                r.at(1, tidx).AsString()};
  EXPECT_TRUE(top2.count("Guilty by Suspicion") == 1 ||
              top2.count("Clean and Sober") == 1);
  auto sidx = r.schema().IndexOf("exciting_score");
  ASSERT_TRUE(sidx.has_value());
  for (size_t i = 1; i < r.num_rows(); ++i) {
    EXPECT_GE(r.at(i - 1, *sidx).AsDouble(), r.at(i, *sidx).AsDouble());
  }
}

TEST_F(QueryVariants, MetadataOnlySortByRecency) {
  auto outcome = Run("Sort the films in the table");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const rel::Table& r = outcome->result;
  EXPECT_EQ(r.num_rows(), dataset_.movie_table->num_rows());
  ASSERT_TRUE(r.schema().HasColumn("recency_score"));
  auto yidx = *r.schema().IndexOf("year");
  for (size_t i = 1; i < r.num_rows(); ++i) {
    EXPECT_GE(r.at(i - 1, yidx).AsInt(), r.at(i, yidx).AsInt());
  }
  // The most recent film (the 1991 anchor) comes first.
  EXPECT_EQ(r.at(0, yidx).AsInt(), 1991);
}

TEST_F(QueryVariants, DifferentSubjectiveTermStillCompiles) {
  auto outcome = Run("Rank the films by how scary they are, but the "
                     "poster should be 'boring'",
                     {"monsters and violence", "OK"});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->result.schema().HasColumn("scary_score"));
  EXPECT_GT(outcome->result.num_rows(), 0u);
}

TEST_F(QueryVariants, SecondQueryOnSameDbWorks) {
  auto first = Run("Find the films where the poster should be 'boring'");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = Run(
      "Sort the given films in the table by how exciting they are, but "
      "the poster should be 'boring'",
      {"uncommon scenes", "prefer recent movies", "OK"});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto tidx = *second->result.schema().IndexOf("title");
  EXPECT_EQ(second->result.at(0, tidx).AsString(), "Guilty by Suspicion");
  // Function versions accumulated across the two queries.
  EXPECT_GE(db_->registry()->VersionsOf("classify_boring").size(), 2u);
}

}  // namespace
}  // namespace kathdb
