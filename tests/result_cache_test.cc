// Tests for the sharded cross-query result cache and its fingerprints.

#include "service/result_cache.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"

namespace kathdb::service {
namespace {

using rel::DataType;
using rel::Schema;
using rel::Table;
using rel::Value;

Table MakeTable(const std::string& name, int rows, int offset = 0) {
  Table t(name, Schema({{"x", DataType::kInt}, {"s", DataType::kString}}));
  for (int r = 0; r < rows; ++r) {
    t.AppendRow({Value::Int(r + offset), Value::Str("row" + std::to_string(r))});
  }
  return t;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache;
  EXPECT_FALSE(cache.Get(42).has_value());
  cache.Put(42, CacheEntry{nullptr, "hello"});
  auto hit = cache.Get(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->text, "hello");
  ResultCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.insertions, 1);
  EXPECT_DOUBLE_EQ(st.hit_rate(), 0.5);
}

TEST(ResultCacheTest, StoresTables) {
  ResultCache cache;
  auto t = std::make_shared<const Table>(MakeTable("t", 3));
  cache.Put(7, CacheEntry{t, ""});
  auto hit = cache.Get(7);
  ASSERT_TRUE(hit.has_value());
  ASSERT_NE(hit->table, nullptr);
  EXPECT_EQ(hit->table->num_rows(), 3u);
  // The cache shares the table, it does not copy it.
  EXPECT_EQ(hit->table.get(), t.get());
}

TEST(ResultCacheTest, ShardCountRoundedToPowerOfTwo) {
  ResultCacheOptions opts;
  opts.shards = 5;
  ResultCache cache(opts);
  EXPECT_EQ(cache.num_shards(), 8u);
}

TEST(ResultCacheTest, CapacityBoundWithFifoEviction) {
  ResultCacheOptions opts;
  opts.shards = 1;  // single shard makes eviction order deterministic
  opts.capacity = 4;
  ResultCache cache(opts);
  for (uint64_t k = 0; k < 10; ++k) {
    cache.Put(k, CacheEntry{nullptr, std::to_string(k)});
  }
  EXPECT_EQ(cache.size(), 4u);
  ResultCacheStats st = cache.stats();
  EXPECT_EQ(st.evictions, 6);
  // Oldest keys are gone, newest survive.
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(5));
  EXPECT_TRUE(cache.Contains(6));
  EXPECT_TRUE(cache.Contains(9));
}

TEST(ResultCacheTest, PutSameKeyRefreshesWithoutEviction) {
  ResultCacheOptions opts;
  opts.shards = 1;
  opts.capacity = 2;
  ResultCache cache(opts);
  cache.Put(1, CacheEntry{nullptr, "a"});
  cache.Put(1, CacheEntry{nullptr, "b"});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(cache.Get(1)->text, "b");
}

TEST(ResultCacheTest, ClearDropsEntriesKeepsCounters) {
  ResultCache cache;
  cache.Put(1, CacheEntry{nullptr, "a"});
  (void)cache.Get(1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(ResultCacheTest, KeysSpreadOverShards) {
  // Sequential keys must not pile onto one stripe.
  size_t seen[16] = {0};
  for (uint64_t k = 0; k < 1024; ++k) {
    ++seen[common::ShardOf(common::Mix64(k), 16)];
  }
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_GT(seen[i], 20u) << "shard " << i << " starved";
  }
}

TEST(FingerprintTest, ContentDeterminesHash) {
  Table a = MakeTable("a", 5);
  Table b = MakeTable("completely_different_name", 5);
  // Same content, different names / lids -> same fingerprint.
  b.set_table_lid(99);
  for (size_t r = 0; r < b.num_rows(); ++r) b.set_row_lid(r, 100 + r);
  EXPECT_EQ(FingerprintTable(a), FingerprintTable(b));

  Table c = MakeTable("a", 5, /*offset=*/1);  // shifted values
  EXPECT_NE(FingerprintTable(a), FingerprintTable(c));
  Table d = MakeTable("a", 6);  // extra row
  EXPECT_NE(FingerprintTable(a), FingerprintTable(d));
}

TEST(FingerprintTest, TupleOrderMatters) {
  auto a = std::make_shared<Table>(MakeTable("a", 2));
  auto b = std::make_shared<Table>(MakeTable("b", 3));
  EXPECT_NE(FingerprintTables({a, b}), FingerprintTables({b, a}));
  EXPECT_EQ(FingerprintTables({a, b}), FingerprintTables({a, b}));
}

}  // namespace
}  // namespace kathdb::service
