// Tests for the src/net subsystem: the kathdb-wire/1 codec, the event
// loop backends, and the full server/client path over loopback TCP —
// streamed partial results byte-identical to the in-process service,
// clarification round-trips over the wire, protocol hardening
// (malformed/truncated/oversized frames, unknown opcodes), slow-client
// backpressure via the write high-water mark, overload shed as
// UNAVAILABLE, cancellation, and mid-stream client disconnects.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "net/wire.h"
#include "relational/io.h"
#include "service/query_service.h"

namespace kathdb::net {
namespace {

constexpr const char* kPaperQuery =
    "Sort the given films in the table by how exciting they are, but the "
    "poster should be 'boring'";

const std::vector<std::string> kPaperReplies = {
    "The movie plot contains scenes that are uncommon in real life",
    "I prefer more recent movies when scoring", "OK"};

constexpr int kRecvTimeoutMs = 30000;  // fail loudly instead of hanging

/// Spins until `pred` holds or ~5s elapse.
bool PollUntil(const std::function<bool()>& pred) {
  for (int i = 0; i < 1000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Wire codec (no sockets)

TEST(WireCodec, FrameRoundTripAcrossSplitReads) {
  std::string bytes = EncodeFrame(Op::kQuery, "hello") +
                      EncodeFrame(Op::kPing, "") +
                      EncodeFrame(Op::kReply, std::string(1000, 'x'));
  FrameReader reader(1u << 20);
  std::vector<Frame> frames;
  // Feed a single byte at a time: frames must reassemble regardless of
  // read boundaries.
  for (char c : bytes) {
    reader.Feed(&c, 1);
    Frame f;
    auto got = reader.Next(&f);
    ASSERT_TRUE(got.ok());
    if (*got) frames.push_back(std::move(f));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].op, Op::kQuery);
  EXPECT_EQ(frames[0].payload, "hello");
  EXPECT_EQ(frames[1].op, Op::kPing);
  EXPECT_EQ(frames[1].payload, "");
  EXPECT_EQ(frames[2].op, Op::kReply);
  EXPECT_EQ(frames[2].payload.size(), 1000u);
}

TEST(WireCodec, RejectsZeroLengthAndOversizedFrames) {
  {
    FrameReader reader(1024);
    const char zeros[4] = {0, 0, 0, 0};
    reader.Feed(zeros, 4);
    Frame f;
    EXPECT_FALSE(reader.Next(&f).ok());
  }
  {
    FrameReader reader(1024);
    std::string big = EncodeFrame(Op::kPing, std::string(2048, 'x'));
    reader.Feed(big.data(), big.size());
    Frame f;
    EXPECT_FALSE(reader.Next(&f).ok());
  }
}

TEST(WireCodec, PayloadReaderRejectsTruncation) {
  PayloadWriter w;
  w.PutU64(42);
  w.PutString("abc");
  std::string payload = w.Take();

  PayloadReader ok_reader(payload);
  ASSERT_TRUE(ok_reader.U64().ok());
  auto s = ok_reader.String();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "abc");
  EXPECT_TRUE(ok_reader.AtEnd());

  std::string cut = payload.substr(0, payload.size() - 1);
  PayloadReader cut_reader(cut);
  ASSERT_TRUE(cut_reader.U64().ok());
  EXPECT_FALSE(cut_reader.String().ok());  // string length overruns

  const std::string no_bytes;  // PayloadReader holds a reference
  PayloadReader empty(no_bytes);
  EXPECT_FALSE(empty.U8().ok());
  EXPECT_FALSE(empty.U32().ok());
}

// ---------------------------------------------------------------------------
// Event loop

TEST(EventLoopTest, RunsTasksAndStops) {
  for (PollBackend backend : {PollBackend::kAuto, PollBackend::kPoll}) {
    EventLoop loop(backend);
    std::atomic<int> ran{0};
    std::thread t([&loop] { loop.Run(); });
    for (int i = 0; i < 10; ++i) {
      loop.RunInLoop([&ran] { ran.fetch_add(1); });
    }
    ASSERT_TRUE(PollUntil([&ran] { return ran.load() == 10; }));
    loop.Stop();
    t.join();
  }
}

#if defined(__linux__)
TEST(EventLoopTest, BackendSelection) {
  EventLoop auto_loop(PollBackend::kAuto);
  EXPECT_TRUE(auto_loop.using_epoll());
  EventLoop poll_loop(PollBackend::kPoll);
  EXPECT_FALSE(poll_loop.using_epoll());
}
#endif

// ---------------------------------------------------------------------------
// Server fixture

class NetFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::DatasetOptions opts;
    opts.num_movies = 12;
    auto ds = data::GenerateMovieDataset(opts);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::move(ds).value();
    // Pin the similarity implementation: "auto" profiles the two
    // same-score candidates by wall clock, and the byte-identity test
    // compares lineage (template ids included) across two engines.
    engine::KathDBOptions db_opts;
    db_opts.optimizer.similarity_impl = "score";
    db_ = std::make_unique<engine::KathDB>(db_opts);
    ASSERT_TRUE(data::IngestDataset(dataset_, db_.get()).ok());
  }

  void StartServer(service::ServiceOptions svc_opts = {},
                   ServerOptions net_opts = {}) {
    service_ = std::make_unique<service::QueryService>(db_.get(), svc_opts);
    server_ = std::make_unique<Server>(service_.get(), net_opts);
    Status st = server_->Start();
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  std::unique_ptr<Client> Connect(
      int rcvbuf_bytes = 0,
      ResultEncoding encoding = ResultEncoding::kColumnar) {
    ClientOptions copts;
    copts.port = server_->port();
    copts.recv_timeout_ms = kRecvTimeoutMs;
    copts.rcvbuf_bytes = rcvbuf_bytes;
    copts.result_encoding = encoding;
    auto client = std::make_unique<Client>(copts);
    Status st = client->Connect();
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(client->negotiated_encoding(), encoding);
    return client;
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  data::MovieDataset dataset_;
  std::unique_ptr<engine::KathDB> db_;
  std::unique_ptr<service::QueryService> service_;
  std::unique_ptr<Server> server_;
};

// ---------------------------------------------------------------------------
// Streaming end to end

TEST_F(NetFixture, StreamedQueryMatchesInProcessByteForByte) {
  // Reference: the same query through the in-process service on a second,
  // identically seeded engine (same dataset seed -> same tables, same
  // function ver_ids, same lineage summary).
  data::DatasetOptions opts;
  opts.num_movies = 12;
  auto ds = data::GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  engine::KathDBOptions ref_opts;
  ref_opts.optimizer.similarity_impl = "score";
  engine::KathDB ref_db(ref_opts);
  ASSERT_TRUE(data::IngestDataset(ds.value(), &ref_db).ok());
  engine::QueryOutcome expected;
  {
    service::QueryService ref_service(&ref_db);
    service::SessionId sid = ref_service.OpenSession(kPaperReplies);
    auto outcome = ref_service.Query(sid, kPaperQuery);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    expected = std::move(outcome).value();
  }

  ServerOptions net_opts;
  net_opts.stream_chunk_rows = 1;  // one row per frame: maximal streaming
  StartServer({}, net_opts);
  auto client = Connect();
  auto sid = client->OpenSession();
  ASSERT_TRUE(sid.ok()) << sid.status().ToString();

  // Clarifications answered live over the wire: the server ASKs, the
  // handler REPLYs.
  std::deque<std::string> replies(kPaperReplies.begin(), kPaperReplies.end());
  auto result = client->Query(
      *sid, kPaperQuery, /*scripted=*/{},
      [&replies](const std::string&, const std::string&) {
        std::optional<std::string> answer;
        if (!replies.empty()) {
          answer = replies.front();
          replies.pop_front();
        }
        return answer;
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->questions_answered, 3u);
  EXPECT_TRUE(replies.empty());
  // >= 2 partial frames before FINAL (one per row here).
  EXPECT_GE(result->partial_frames, 2u);
  EXPECT_EQ(result->partial_frames, expected.result.num_rows());
  EXPECT_EQ(result->total_rows, expected.result.num_rows());

  // Reassembled table and lineage summary are byte-identical to the
  // in-process outcome.
  EXPECT_EQ(rel::TableToCsv(result->table), rel::TableToCsv(expected.result));
  EXPECT_EQ(result->lineage_summary, LineageSummary(expected.report));

  EXPECT_GE(server_->stats().partial_frames,
            static_cast<int64_t>(result->partial_frames));
}

TEST_F(NetFixture, CsvAndColumnarEncodingsMatchInProcessByteForByte) {
  // Three-way differential: the same query through the in-process
  // service, a legacy CSV connection, and a columnar connection must
  // produce byte-identical tables (per TableToCsv) and identical
  // lineage summaries — the wire encoding is invisible to results.
  engine::QueryOutcome expected;
  {
    service::QueryService ref_service(db_.get());
    service::SessionId sid = ref_service.OpenSession(kPaperReplies);
    auto outcome = ref_service.Query(sid, kPaperQuery);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    expected = std::move(outcome).value();
    ref_service.CloseSession(sid);
  }
  ASSERT_GT(expected.result.num_rows(), 0u);

  ServerOptions net_opts;
  net_opts.stream_chunk_rows = 2;  // force multi-chunk reassembly
  StartServer({}, net_opts);

  auto run_as = [&](ResultEncoding encoding) {
    auto client = Connect(0, encoding);
    auto sid = client->OpenSession();
    EXPECT_TRUE(sid.ok());
    auto result = client->Query(*sid, kPaperQuery, kPaperReplies);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    client->CloseSession(*sid);
    return std::move(*result);
  };
  StreamedResult via_csv = run_as(ResultEncoding::kCsv);
  StreamedResult via_col = run_as(ResultEncoding::kColumnar);

  EXPECT_GE(via_col.partial_frames, 2u);
  EXPECT_EQ(via_csv.partial_frames, via_col.partial_frames);
  EXPECT_EQ(rel::TableToCsv(via_csv.table),
            rel::TableToCsv(expected.result));
  EXPECT_EQ(rel::TableToCsv(via_col.table),
            rel::TableToCsv(expected.result));
  // The three runs share one engine, so each registers fresh function
  // versions; the summaries must agree on everything but the ver ids.
  auto normalize_vers = [](std::string s) {
    size_t pos = 0;
    while ((pos = s.find(" v", pos)) != std::string::npos) {
      size_t d = pos + 2;
      while (d < s.size() && std::isdigit(static_cast<unsigned char>(s[d]))) {
        ++d;
      }
      if (d > pos + 2) s.replace(pos, d - pos, " vN");
      pos += 2;
    }
    return s;
  };
  EXPECT_EQ(normalize_vers(via_csv.lineage_summary),
            normalize_vers(LineageSummary(expected.report)));
  EXPECT_EQ(normalize_vers(via_col.lineage_summary),
            normalize_vers(via_csv.lineage_summary));
  // The columnar table is cell-identical, exact value types included —
  // stronger than the CSV rendering check.
  ASSERT_EQ(via_col.table.num_rows(), expected.result.num_rows());
  for (size_t r = 0; r < expected.result.num_rows(); ++r) {
    for (size_t c = 0; c < expected.result.schema().num_columns(); ++c) {
      EXPECT_EQ(via_col.table.at(r, c), expected.result.at(r, c));
      EXPECT_EQ(via_col.table.at(r, c).type(),
                expected.result.at(r, c).type());
    }
  }
  // Wire accounting: the server metered bytes for the partial frames.
  NetStats stats = server_->stats();
  EXPECT_GE(stats.partial_frames,
            static_cast<int64_t>(via_csv.partial_frames +
                                 via_col.partial_frames));
  EXPECT_GT(stats.partial_bytes, 0);
}

TEST_F(NetFixture, LegacyBareHelloStillNegotiatesCsv) {
  StartServer();
  ClientOptions copts;
  copts.port = server_->port();
  copts.recv_timeout_ms = kRecvTimeoutMs;
  copts.result_encoding = ResultEncoding::kCsv;  // bare legacy HELLO
  Client client(copts);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.negotiated_encoding(), ResultEncoding::kCsv);
  auto sid = client.OpenSession();
  ASSERT_TRUE(sid.ok());
  auto result = client.Query(*sid, kPaperQuery, kPaperReplies);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->total_rows, 0u);
}

TEST_F(NetFixture, MalformedHelloEncodingClosesTheConnection) {
  StartServer();
  ClientOptions copts;
  copts.port = server_->port();
  copts.recv_timeout_ms = kRecvTimeoutMs;
  Client client(copts);
  ASSERT_TRUE(client.ConnectRaw().ok());
  PayloadWriter w;
  w.PutString(kWireMagic);
  w.PutU8(99);  // not a ResultEncoding
  ASSERT_TRUE(client.SendFrame(Op::kHello, w.Take()).ok());
  auto frame = client.ReadFrame();
  EXPECT_FALSE(frame.ok());  // server closed without HELLO_OK
}

TEST_F(NetFixture, ScriptedRepliesRideAlongInTheQueryFrame) {
  StartServer();
  auto client = Connect();
  auto sid = client->OpenSession();
  ASSERT_TRUE(sid.ok());
  // Replies shipped in the QUERY frame are consumed server-side: no ASK
  // ever crosses the wire.
  bool asked = false;
  auto result = client->Query(*sid, kPaperQuery, kPaperReplies,
                              [&asked](const std::string&,
                                       const std::string&) {
                                asked = true;
                                return std::optional<std::string>("OK");
                              });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(asked);
  EXPECT_EQ(result->questions_answered, 0u);
  EXPECT_GT(result->total_rows, 0u);
}

TEST_F(NetFixture, PollBackendServesQueries) {
  ServerOptions net_opts;
  net_opts.backend = PollBackend::kPoll;
  net_opts.stream_chunk_rows = 1;
  StartServer({}, net_opts);
  auto client = Connect();
  auto sid = client->OpenSession();
  ASSERT_TRUE(sid.ok());
  auto result = client->Query(*sid, kPaperQuery, kPaperReplies);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->partial_frames, 2u);
}

TEST_F(NetFixture, StatsFrameReportsServiceAndNetCounters) {
  StartServer();
  auto client = Connect();
  auto sid = client->OpenSession();
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(client->Query(*sid, kPaperQuery, kPaperReplies).ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("queries: submitted=1"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("net: conns=1"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("responses: OK=1"), std::string::npos) << *stats;
}

TEST_F(NetFixture, PingAndSessionLifecycleOverTheWire) {
  StartServer();
  auto client = Connect();
  auto pong = client->Ping("payload-123");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "payload-123");

  auto sid = client->OpenSession(kPaperReplies);
  ASSERT_TRUE(sid.ok());
  EXPECT_EQ(service_->num_sessions(), 1u);
  EXPECT_TRUE(client->CloseSession(*sid).ok());
  EXPECT_EQ(service_->num_sessions(), 0u);
  // Closing a session this connection does not own is a protocol-level
  // error frame, not a dropped connection.
  Status st = client->CloseSession(999);
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
  EXPECT_TRUE(client->Ping("still alive").ok());
}

// ---------------------------------------------------------------------------
// Clarification cancellation and disconnects

TEST_F(NetFixture, CancelMidClarificationAbortsTheQuery) {
  StartServer();
  auto client = Connect();
  auto sid = client->OpenSession();
  ASSERT_TRUE(sid.ok());
  uint64_t qid = client->next_query_id();
  // No scripted replies: the first ASK arrives over the wire; instead of
  // answering, cancel the query.
  auto result = client->Query(
      *sid, kPaperQuery, /*scripted=*/{},
      [&client, qid](const std::string&, const std::string&) {
        EXPECT_TRUE(client->Cancel(qid).ok());
        return std::optional<std::string>();  // leave unanswered
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUserAborted)
      << result.status().ToString();
  // The aborted query is still accounted: exactly one response, aborted.
  ASSERT_TRUE(PollUntil([this] { return service_->stats().failed == 1; }));
  auto stats = service_->stats();
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.responses["UserAborted"], 1);
}

TEST_F(NetFixture, MidQueryDisconnectDetachesCleanly) {
  StartServer();
  auto client = Connect();
  auto sid = client->OpenSession();
  ASSERT_TRUE(sid.ok());
  EXPECT_EQ(service_->num_sessions(), 1u);

  // Submit by hand so we can slam the connection shut at the exact
  // moment the server is blocked waiting for our REPLY.
  PayloadWriter w;
  w.PutU64(*sid);
  w.PutU64(1);
  w.PutString(kPaperQuery);
  w.PutU32(0);
  ASSERT_TRUE(client->SendFrame(Op::kQuery, w.Take()).ok());
  bool saw_ask = false;
  while (!saw_ask) {
    auto frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (frame->op == Op::kAsk) saw_ask = true;
  }
  client->Close();  // mid-query disconnect

  // The blocked clarification unblocks with kUserAborted, the query is
  // metered exactly once, the orphaned session is released, and the
  // connection is gone.
  ASSERT_TRUE(PollUntil([this] { return service_->stats().failed == 1; }));
  ASSERT_TRUE(PollUntil([this] { return service_->num_sessions() == 0; }));
  ASSERT_TRUE(PollUntil(
      [this] { return server_->stats().connections_active == 0; }));
  auto stats = service_->stats();
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.responses.size(), 1u);
  EXPECT_EQ(stats.responses["UserAborted"], 1);
  service_->Drain();
  EXPECT_EQ(service_->stats().failed, 1);  // still exactly once

  // The server keeps serving fresh connections.
  auto client2 = Connect();
  auto sid2 = client2->OpenSession();
  ASSERT_TRUE(sid2.ok());
  ASSERT_TRUE(client2->Query(*sid2, kPaperQuery, kPaperReplies).ok());
}

// ---------------------------------------------------------------------------
// Protocol hardening

TEST_F(NetFixture, BadHelloMagicClosesTheConnection) {
  StartServer();
  ClientOptions copts;
  copts.port = server_->port();
  copts.recv_timeout_ms = kRecvTimeoutMs;
  Client raw(copts);
  ASSERT_TRUE(raw.ConnectRaw().ok());
  PayloadWriter w;
  w.PutString("not-kathdb-wire");
  ASSERT_TRUE(raw.SendFrame(Op::kHello, w.Take()).ok());
  auto frame = raw.ReadFrame();
  EXPECT_FALSE(frame.ok());  // closed without a reply
  EXPECT_TRUE(PollUntil([this] { return server_->stats().protocol_errors >= 1; }));
}

TEST_F(NetFixture, OversizedFrameClosesTheConnection) {
  ServerOptions net_opts;
  net_opts.max_frame_bytes = 1024;
  StartServer({}, net_opts);
  auto client = Connect();
  ASSERT_TRUE(client->SendFrame(Op::kPing, std::string(4096, 'x')).ok());
  EXPECT_FALSE(client->ReadFrame().ok());
  EXPECT_TRUE(PollUntil([this] { return server_->stats().protocol_errors >= 1; }));
}

TEST_F(NetFixture, ZeroLengthFrameClosesTheConnection) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client->SendBytes(std::string(4, '\0')).ok());
  EXPECT_FALSE(client->ReadFrame().ok());
  EXPECT_TRUE(PollUntil([this] { return server_->stats().protocol_errors >= 1; }));
}

TEST_F(NetFixture, UnknownOpcodeClosesCleanlyAndServerKeepsServing) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client->SendFrame(static_cast<Op>(0x7F), "junk").ok());
  EXPECT_FALSE(client->ReadFrame().ok());
  EXPECT_TRUE(PollUntil([this] { return server_->stats().protocol_errors >= 1; }));
  EXPECT_TRUE(PollUntil(
      [this] { return server_->stats().connections_active == 0; }));

  // A well-behaved connection right after is unaffected.
  auto client2 = Connect();
  auto pong = client2->Ping("ok");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "ok");
}

TEST_F(NetFixture, TruncatedFrameThenDisconnectLeaksNothing) {
  StartServer();
  auto client = Connect();
  // Header promises 100 bytes; send only a fragment, then vanish.
  std::string full = EncodeFrame(Op::kQuery, std::string(95, 'q'));
  ASSERT_TRUE(client->SendBytes(full.substr(0, 20)).ok());
  client->Close();
  EXPECT_TRUE(PollUntil(
      [this] { return server_->stats().connections_active == 0; }));
  EXPECT_EQ(server_->stats().protocol_errors, 0);  // incomplete != malformed
}

TEST_F(NetFixture, ByteByByteWritesStillParse) {
  StartServer();
  ClientOptions copts;
  copts.port = server_->port();
  copts.recv_timeout_ms = kRecvTimeoutMs;
  Client client(copts);
  ASSERT_TRUE(client.ConnectRaw().ok());
  PayloadWriter hello;
  hello.PutString(kWireMagic);
  PayloadWriter open;
  open.PutU32(0);
  std::string bytes = EncodeFrame(Op::kHello, hello.Take()) +
                      EncodeFrame(Op::kOpenSession, open.Take());
  for (char c : bytes) {  // worst-case fragmentation
    ASSERT_TRUE(client.SendBytes(std::string(1, c)).ok());
  }
  auto f1 = client.ReadFrame();
  ASSERT_TRUE(f1.ok()) << f1.status().ToString();
  EXPECT_EQ(f1->op, Op::kHelloOk);
  auto f2 = client.ReadFrame();
  ASSERT_TRUE(f2.ok()) << f2.status().ToString();
  EXPECT_EQ(f2->op, Op::kSessionOpened);
}

// ---------------------------------------------------------------------------
// Backpressure and overload

TEST_F(NetFixture, SlowClientPausesReadsWithoutStallingOthers) {
  ServerOptions net_opts;
  net_opts.sndbuf_bytes = 4096;       // tiny kernel buffer to the client
  net_opts.write_high_water = 16384;  // trips after a few echoed pings
  StartServer({}, net_opts);

  // Connection A floods PINGs without reading a single PONG; its small
  // receive buffer plus the server's small send buffer force the outbox
  // over the high-water mark.
  auto slow = Connect(/*rcvbuf_bytes=*/4096);
  constexpr int kPings = 64;
  const std::string payload(32 << 10, 'p');
  std::thread sender([&slow, &payload] {
    for (int i = 0; i < kPings; ++i) {
      EXPECT_TRUE(slow->SendFrame(Op::kPing, payload).ok());
    }
  });

  ASSERT_TRUE(PollUntil([this] { return server_->stats().reads_paused >= 1; }))
      << server_->stats().ToText();

  // While A is paused, connection B gets full service.
  auto fast = Connect();
  auto sid = fast->OpenSession();
  ASSERT_TRUE(sid.ok());
  auto result = fast->Query(*sid, kPaperQuery, kPaperReplies);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->total_rows, 0u);

  // Drain A: every PONG arrives intact once the client starts reading,
  // and the paused read side resumes (hysteresis at half the mark).
  for (int i = 0; i < kPings; ++i) {
    auto pong = slow->ReadFrame();
    ASSERT_TRUE(pong.ok()) << "pong " << i << ": "
                           << pong.status().ToString();
    ASSERT_EQ(pong->op, Op::kPong);
    ASSERT_EQ(pong->payload.size(), payload.size());
  }
  sender.join();
  EXPECT_GE(server_->stats().reads_paused, 1);
  EXPECT_TRUE(slow->Ping("after the flood").ok());
}

TEST_F(NetFixture, OverloadIsShedAsUnavailableErrorFrame) {
  service::ServiceOptions svc_opts;
  svc_opts.workers = 1;
  svc_opts.max_queue = 1;
  StartServer(svc_opts);
  auto client = Connect();
  auto sid = client->OpenSession();
  ASSERT_TRUE(sid.ok());

  // q1 blocks the only worker on a wire clarification.
  PayloadWriter q1;
  q1.PutU64(*sid);
  q1.PutU64(101);
  q1.PutString(kPaperQuery);
  q1.PutU32(0);
  ASSERT_TRUE(client->SendFrame(Op::kQuery, q1.Take()).ok());
  bool saw_ask = false;
  while (!saw_ask) {
    auto frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok());
    if (frame->op == Op::kAsk) saw_ask = true;
  }

  // q2 fills the single admission slot.
  PayloadWriter q2;
  q2.PutU64(*sid);
  q2.PutU64(102);
  q2.PutString(kPaperQuery);
  q2.PutU32(static_cast<uint32_t>(kPaperReplies.size()));
  for (const auto& r : kPaperReplies) q2.PutString(r);
  ASSERT_TRUE(client->SendFrame(Op::kQuery, q2.Take()).ok());

  // q3 must be shed at the protocol level: UNAVAILABLE, connection kept.
  PayloadWriter q3;
  q3.PutU64(*sid);
  q3.PutU64(103);
  q3.PutString(kPaperQuery);
  q3.PutU32(0);
  ASSERT_TRUE(client->SendFrame(Op::kQuery, q3.Take()).ok());

  bool saw_unavailable = false;
  while (!saw_unavailable) {
    auto frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (frame->op != Op::kError) continue;
    PayloadReader r(frame->payload);
    auto qid = r.U64();
    auto code = r.U32();
    ASSERT_TRUE(qid.ok());
    ASSERT_TRUE(code.ok());
    if (*qid == 103) {
      EXPECT_EQ(static_cast<StatusCode>(*code), StatusCode::kUnavailable);
      saw_unavailable = true;
    }
  }
  EXPECT_GE(server_->stats().unavailable_sent, 1);
  EXPECT_GE(service_->stats().rejected, 1);

  // Unwedge q1 and let q2 finish: the connection stayed healthy through
  // the shed.
  PayloadWriter cancel;
  cancel.PutU64(101);
  ASSERT_TRUE(client->SendFrame(Op::kCancel, cancel.Take()).ok());
  bool q1_done = false, q2_done = false;
  while (!q1_done || !q2_done) {
    auto frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    PayloadReader r(frame->payload);
    if (frame->op == Op::kError) {
      auto qid = r.U64();
      ASSERT_TRUE(qid.ok());
      if (*qid == 101) q1_done = true;
    } else if (frame->op == Op::kFinal) {
      auto qid = r.U64();
      ASSERT_TRUE(qid.ok());
      if (*qid == 102) q2_done = true;
    }
  }
  EXPECT_EQ(service_->stats().responses["Unavailable"], 1);
}

// Two clients on one server, interleaved queries, clean shutdown with a
// connection still open: exercises Stop()'s detach path under load.
TEST_F(NetFixture, StopWithLiveConnectionsShutsDownCleanly) {
  StartServer();
  auto a = Connect();
  auto b = Connect();
  auto sid_a = a->OpenSession();
  auto sid_b = b->OpenSession();
  ASSERT_TRUE(sid_a.ok());
  ASSERT_TRUE(sid_b.ok());
  ASSERT_TRUE(a->Query(*sid_a, kPaperQuery, kPaperReplies).ok());
  ASSERT_TRUE(b->Query(*sid_b, kPaperQuery, kPaperReplies).ok());
  server_->Stop();  // clients still connected
  EXPECT_EQ(server_->stats().connections_active, 0);
  EXPECT_EQ(service_->num_sessions(), 0u);
  server_.reset();
  service_.reset();
}

}  // namespace
}  // namespace kathdb::net
