// Unit tests for src/relational: Value, Schema, Table, Catalog, Expr, ops.

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/expr.h"
#include "relational/ops.h"
#include "relational/table.h"

namespace kathdb::rel {
namespace {

// ----------------------------------------------------------------- Value

TEST(ValueTest, TypesAndNull) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(3).type(), DataType::kInt);
  EXPECT_EQ(Value::Double(3.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::Str("x").type(), DataType::kString);
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Bool(true).Compare(Value::Int(1)), 0);
}

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Str("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericHashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_NE(Value::Str("abc").Hash(), Value::Str("abd").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Double(0.25).ToString(), "0.25");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  Schema s({{"Title", DataType::kString}, {"year", DataType::kInt}});
  EXPECT_EQ(s.IndexOf("Title").value(), 0u);
  EXPECT_EQ(s.IndexOf("title").value(), 0u);
  EXPECT_EQ(s.IndexOf("YEAR").value(), 1u);
  EXPECT_FALSE(s.IndexOf("nope").has_value());
}

TEST(SchemaTest, ConcatPrefixesClashes) {
  Schema a({{"id", DataType::kInt}, {"name", DataType::kString}});
  Schema b({{"id", DataType::kInt}, {"score", DataType::kDouble}});
  Schema c = Schema::Concat(a, b, "r");
  ASSERT_EQ(c.num_columns(), 4u);
  EXPECT_EQ(c.column(2).name, "r.id");
  EXPECT_EQ(c.column(3).name, "score");
}

TEST(SchemaTest, ConcatDisambiguatesRepeatedClash) {
  Schema a({{"x", DataType::kInt}, {"r.x", DataType::kInt}});
  Schema b({{"x", DataType::kInt}});
  Schema c = Schema::Concat(a, b, "r");
  ASSERT_EQ(c.num_columns(), 3u);
  EXPECT_NE(c.column(2).name, "x");
  EXPECT_NE(c.column(2).name, "r.x");
}

// ----------------------------------------------------------------- Table

Table MakeMovies() {
  Table t("movies", Schema({{"title", DataType::kString},
                            {"year", DataType::kInt},
                            {"score", DataType::kDouble}}));
  t.AppendRow({Value::Str("Guilty by Suspicion"), Value::Int(1991),
               Value::Double(0.99)}, 101);
  t.AppendRow({Value::Str("Clean and Sober"), Value::Int(1988),
               Value::Double(0.97)}, 102);
  t.AppendRow({Value::Str("Quiet Meadow"), Value::Int(2005),
               Value::Double(0.11)}, 103);
  return t;
}

TEST(TableTest, AppendAndAccess) {
  Table t = MakeMovies();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.at(0, 0).AsString(), "Guilty by Suspicion");
  EXPECT_EQ(t.GetByName(1, "year").AsInt(), 1988);
  EXPECT_TRUE(t.GetByName(0, "missing").is_null());
  EXPECT_EQ(t.row_lid(2), 103);
}

TEST(TableTest, ValidateCatchesRaggedRows) {
  Table t("bad", Schema({{"a", DataType::kInt}}));
  t.AppendRow({Value::Int(1)});
  EXPECT_TRUE(t.Validate().ok());
  t.AppendRow({Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, HeadKeepsLids) {
  Table t = MakeMovies();
  Table h = t.Head(2);
  EXPECT_EQ(h.num_rows(), 2u);
  EXPECT_EQ(h.row_lid(0), 101);
}

TEST(TableTest, ToTextContainsHeaderAndRows) {
  std::string text = MakeMovies().ToText();
  EXPECT_NE(text.find("title"), std::string::npos);
  EXPECT_NE(text.find("Guilty by Suspicion"), std::string::npos);
}

// --------------------------------------------------------------- Catalog

TEST(CatalogTest, RegisterGetDrop) {
  Catalog cat;
  auto t = std::make_shared<Table>(MakeMovies());
  ASSERT_TRUE(cat.Register(t).ok());
  EXPECT_FALSE(cat.Register(t).ok());  // duplicate
  ASSERT_TRUE(cat.Get("movies").ok());
  EXPECT_FALSE(cat.Get("nope").ok());
  EXPECT_TRUE(cat.Drop("movies").ok());
  EXPECT_FALSE(cat.Has("movies"));
}

TEST(CatalogTest, UpsertReplaces) {
  Catalog cat;
  cat.Upsert(std::make_shared<Table>(MakeMovies()));
  auto t2 = std::make_shared<Table>(MakeMovies());
  t2->AppendRow({Value::Str("X"), Value::Int(2000), Value::Double(0.5)});
  cat.Upsert(t2);
  EXPECT_EQ(cat.Get("movies").value()->num_rows(), 4u);
}

TEST(CatalogTest, SampleRowsAndDescribe) {
  Catalog cat;
  cat.Upsert(std::make_shared<Table>(MakeMovies()), RelationKind::kBaseTable);
  auto s = cat.SampleRows("movies", 2);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().num_rows(), 2u);
  std::string d = cat.DescribeAll();
  EXPECT_NE(d.find("movies"), std::string::npos);
  EXPECT_NE(d.find("title:STRING"), std::string::npos);
}

TEST(CatalogTest, JoinableDetectsSharedKeyColumn) {
  Catalog cat;
  cat.Upsert(std::make_shared<Table>(MakeMovies()));
  Table p("posters", Schema({{"title", DataType::kString},
                             {"img", DataType::kString}}));
  p.AppendRow({Value::Str("Guilty by Suspicion"), Value::Str("a.simg")});
  cat.Upsert(std::make_shared<Table>(std::move(p)));
  std::string on;
  EXPECT_TRUE(cat.Joinable("movies", "posters", &on));
  EXPECT_EQ(on, "title");
  EXPECT_FALSE(cat.Joinable("movies", "nope", &on));
}

// ------------------------------------------------------------------ Expr

TEST(ExprTest, ArithmeticAndComparison) {
  Schema s({{"a", DataType::kInt}, {"b", DataType::kDouble}});
  Row r{Value::Int(4), Value::Double(2.5)};
  auto e = Expr::Binary(BinaryOp::kAdd, Expr::Column("a"), Expr::Column("b"));
  EXPECT_DOUBLE_EQ(e->Eval(r, s).value().AsDouble(), 6.5);

  auto cmp = Expr::Binary(BinaryOp::kGt, Expr::Column("a"),
                          Expr::Literal(Value::Int(3)));
  EXPECT_TRUE(cmp->Eval(r, s).value().AsBool());
}

TEST(ExprTest, IntegerArithmeticStaysInt) {
  Schema s;
  Row r;
  auto e = Expr::Binary(BinaryOp::kMul, Expr::Literal(Value::Int(6)),
                        Expr::Literal(Value::Int(7)));
  Value v = e->Eval(r, s).value();
  EXPECT_EQ(v.type(), DataType::kInt);
  EXPECT_EQ(v.AsInt(), 42);
}

TEST(ExprTest, DivisionByZeroIsSyntacticError) {
  Schema s;
  Row r;
  auto e = Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value::Int(1)),
                        Expr::Literal(Value::Int(0)));
  auto res = e->Eval(r, s);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsSyntacticError());
}

TEST(ExprTest, UnknownColumnIsSyntacticError) {
  Schema s({{"a", DataType::kInt}});
  Row r{Value::Int(1)};
  auto e = Expr::Column("ghost");
  auto res = e->Eval(r, s);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsSyntacticError());
}

TEST(ExprTest, LogicalShortCircuit) {
  Schema s({{"a", DataType::kInt}});
  Row r{Value::Int(0)};
  // (a <> 0) AND (1/a > 0) must not divide by zero.
  auto guard = Expr::Binary(BinaryOp::kNe, Expr::Column("a"),
                            Expr::Literal(Value::Int(0)));
  auto div = Expr::Binary(
      BinaryOp::kGt,
      Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value::Int(1)),
                   Expr::Column("a")),
      Expr::Literal(Value::Int(0)));
  auto e = Expr::Binary(BinaryOp::kAnd, guard, div);
  auto res = e->Eval(r, s);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res.value().AsBool());
}

TEST(ExprTest, NullPropagatesThroughComparison) {
  Schema s({{"a", DataType::kInt}});
  Row r{Value::Null()};
  auto e = Expr::Binary(BinaryOp::kEq, Expr::Column("a"),
                        Expr::Literal(Value::Int(1)));
  EXPECT_TRUE(e->Eval(r, s).value().is_null());
}

TEST(ExprTest, BuiltinFunctions) {
  Schema s({{"t", DataType::kString}});
  Row r{Value::Str("Guilty by Suspicion")};
  EXPECT_EQ(Expr::Call("lower", {Expr::Column("t")})
                ->Eval(r, s).value().AsString(),
            "guilty by suspicion");
  EXPECT_EQ(Expr::Call("length", {Expr::Column("t")})
                ->Eval(r, s).value().AsInt(),
            19);
  EXPECT_TRUE(Expr::Call("contains",
                         {Expr::Column("t"),
                          Expr::Literal(Value::Str("suspicion"))})
                  ->Eval(r, s).value().AsBool());
  EXPECT_DOUBLE_EQ(Expr::Call("round", {Expr::Literal(Value::Double(2.456)),
                                        Expr::Literal(Value::Int(2))})
                       ->Eval(r, s).value().AsDouble(),
                   2.46);
  EXPECT_EQ(Expr::Call("if", {Expr::Literal(Value::Bool(true)),
                              Expr::Literal(Value::Int(1)),
                              Expr::Literal(Value::Int(2))})
                ->Eval(r, s).value().AsInt(),
            1);
}

TEST(ExprTest, UnknownFunctionIsSyntacticError) {
  Schema s;
  Row r;
  auto res = Expr::Call("frobnicate", {})->Eval(r, s);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsSyntacticError());
}

TEST(ExprTest, ReferencedColumnsDeduplicated) {
  auto e = Expr::Binary(
      BinaryOp::kAdd, Expr::Column("a"),
      Expr::Binary(BinaryOp::kMul, Expr::Column("a"), Expr::Column("b")));
  auto cols = e->ReferencedColumns();
  ASSERT_EQ(cols.size(), 2u);
}

TEST(ExprTest, ToStringReadable) {
  auto e = Expr::Binary(BinaryOp::kAnd,
                        Expr::Binary(BinaryOp::kGt, Expr::Column("year"),
                                     Expr::Literal(Value::Int(1990))),
                        Expr::Column("boring"));
  EXPECT_EQ(e->ToString(), "((year > 1990) AND boring)");
}

// ------------------------------------------------------------- Operators

TablePtr MoviesPtr() { return std::make_shared<Table>(MakeMovies()); }

TEST(OpsTest, SeqScanMaterializesAll) {
  auto scan = MakeSeqScan(MoviesPtr());
  auto t = Materialize(scan.get(), "out");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().num_rows(), 3u);
  EXPECT_EQ(t.value().row_lid(0), 101);
}

TEST(OpsTest, FilterKeepsMatching) {
  auto op = MakeFilter(MakeSeqScan(MoviesPtr()),
                       Expr::Binary(BinaryOp::kLt, Expr::Column("year"),
                                    Expr::Literal(Value::Int(1990))));
  auto t = Materialize(op.get(), "out");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t.value().num_rows(), 1u);
  EXPECT_EQ(t.value().at(0, 0).AsString(), "Clean and Sober");
  EXPECT_EQ(t.value().row_lid(0), 102);  // lineage flows through filter
}

TEST(OpsTest, ProjectComputesAndRenames) {
  auto op = MakeProject(
      MakeSeqScan(MoviesPtr()),
      {Expr::Column("title"),
       Expr::Binary(BinaryOp::kMul, Expr::Column("score"),
                    Expr::Literal(Value::Double(100.0)))},
      {"t", "pct"});
  auto t = Materialize(op.get(), "out");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().schema().column(1).name, "pct");
  EXPECT_DOUBLE_EQ(t.value().at(0, 1).AsDouble(), 99.0);
}

TEST(OpsTest, HashJoinMatchesKeys) {
  Table p("posters", Schema({{"title", DataType::kString},
                             {"img", DataType::kString}}));
  p.AppendRow({Value::Str("Guilty by Suspicion"), Value::Str("g.simg")});
  p.AppendRow({Value::Str("Quiet Meadow"), Value::Str("q.simg")});
  auto op = MakeHashJoin(MakeSeqScan(MoviesPtr()),
                         MakeSeqScan(std::make_shared<Table>(std::move(p))),
                         "title", "title", "p");
  auto t = Materialize(op.get(), "out");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().num_rows(), 2u);
  // Right-side clash column got prefixed.
  EXPECT_TRUE(t.value().schema().HasColumn("p.title"));
}

TEST(OpsTest, HashJoinMissingColumnFails) {
  auto op = MakeHashJoin(MakeSeqScan(MoviesPtr()), MakeSeqScan(MoviesPtr()),
                         "title", "ghost", "r");
  auto t = Materialize(op.get(), "out");
  ASSERT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsSyntacticError());
}

TEST(OpsTest, NestedLoopJoinTheta) {
  auto pred = Expr::Binary(BinaryOp::kLt, Expr::Column("year"),
                           Expr::Column("r.year"));
  auto op = MakeNestedLoopJoin(MakeSeqScan(MoviesPtr()),
                               MakeSeqScan(MoviesPtr()), pred, "r");
  auto t = Materialize(op.get(), "out");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().num_rows(), 3u);  // (88,91) (88,05) (91,05)
}

TEST(OpsTest, AggregateGlobalAndGrouped) {
  auto global = MakeAggregate(
      MakeSeqScan(MoviesPtr()), {},
      {{AggFn::kCount, "", "n"}, {AggFn::kAvg, "score", "avg_score"}});
  auto t = Materialize(global.get(), "out");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t.value().num_rows(), 1u);
  EXPECT_EQ(t.value().at(0, 0).AsInt(), 3);
  EXPECT_NEAR(t.value().at(0, 1).AsDouble(), (0.99 + 0.97 + 0.11) / 3, 1e-9);

  // Group by decade-ish: year itself here (3 groups).
  auto grouped = MakeAggregate(MakeSeqScan(MoviesPtr()), {"year"},
                               {{AggFn::kMax, "score", "max_score"}});
  auto g = Materialize(grouped.get(), "out");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_rows(), 3u);
}

TEST(OpsTest, AggregateOnEmptyInputGlobalRow) {
  Table empty("e", Schema({{"x", DataType::kInt}}));
  auto op = MakeAggregate(MakeSeqScan(std::make_shared<Table>(empty)), {},
                          {{AggFn::kCount, "", "n"},
                           {AggFn::kMin, "x", "mn"}});
  auto t = Materialize(op.get(), "out");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t.value().num_rows(), 1u);
  EXPECT_EQ(t.value().at(0, 0).AsInt(), 0);
  EXPECT_TRUE(t.value().at(0, 1).is_null());
}

TEST(OpsTest, SortAscDescStable) {
  auto asc = MakeSort(MakeSeqScan(MoviesPtr()), {{"year", false}});
  auto t = Materialize(asc.get(), "out");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().at(0, 1).AsInt(), 1988);
  EXPECT_EQ(t.value().at(2, 1).AsInt(), 2005);

  auto desc = MakeSort(MakeSeqScan(MoviesPtr()), {{"score", true}});
  auto d = Materialize(desc.get(), "out");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().at(0, 0).AsString(), "Guilty by Suspicion");
}

TEST(OpsTest, LimitAndDistinct) {
  auto lim = MakeLimit(MakeSeqScan(MoviesPtr()), 2);
  EXPECT_EQ(Materialize(lim.get(), "out").value().num_rows(), 2u);

  Table dup("d", Schema({{"x", DataType::kInt}}));
  dup.AppendRow({Value::Int(1)});
  dup.AppendRow({Value::Int(1)});
  dup.AppendRow({Value::Int(2)});
  auto dis = MakeDistinct(MakeSeqScan(std::make_shared<Table>(dup)));
  EXPECT_EQ(Materialize(dis.get(), "out").value().num_rows(), 2u);
}

TEST(OpsTest, UnionAllRequiresSameSchema) {
  auto u = MakeUnionAll(MakeSeqScan(MoviesPtr()), MakeSeqScan(MoviesPtr()));
  auto t = Materialize(u.get(), "out");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().num_rows(), 6u);

  Table other("o", Schema({{"x", DataType::kInt}}));
  auto bad = MakeUnionAll(MakeSeqScan(MoviesPtr()),
                          MakeSeqScan(std::make_shared<Table>(other)));
  EXPECT_FALSE(Materialize(bad.get(), "out").ok());
}

// Property-style sweep: filter then count == manual count, over predicates.
class FilterCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(FilterCountProperty, FilterMatchesManualCount) {
  int threshold = GetParam();
  Table t("nums", Schema({{"v", DataType::kInt}}));
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({Value::Int(i * 7 % 50)});
  }
  size_t manual = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (t.at(i, 0).AsInt() > threshold) ++manual;
  }
  auto op = MakeFilter(MakeSeqScan(std::make_shared<Table>(t)),
                       Expr::Binary(BinaryOp::kGt, Expr::Column("v"),
                                    Expr::Literal(Value::Int(threshold))));
  auto out = Materialize(op.get(), "out");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().num_rows(), manual);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FilterCountProperty,
                         ::testing::Values(-1, 0, 10, 25, 49, 100));

}  // namespace
}  // namespace kathdb::rel
