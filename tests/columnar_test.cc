// Differential tests for the columnar storage engine: chunked execution
// vs the row-at-a-time reference, zero-copy slices, copy-on-write, and
// encoding-independent fingerprints.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fao/function.h"
#include "common/thread_pool.h"
#include "relational/column.h"
#include "relational/expr.h"
#include "relational/ops.h"
#include "relational/table.h"
#include "service/result_cache.h"

namespace kathdb::rel {
namespace {

/// Deterministic mixed-type table with NULLs, repeated strings (dict
/// friendly) and per-row lids.
std::shared_ptr<Table> MakeMovies(size_t rows) {
  Schema schema;
  schema.AddColumn("mid", DataType::kInt);
  schema.AddColumn("year", DataType::kInt);
  schema.AddColumn("score", DataType::kDouble);
  schema.AddColumn("genre", DataType::kString);
  schema.AddColumn("watched", DataType::kBool);
  static const char* kGenres[] = {"action", "comedy", "drama", "horror"};
  auto t = std::make_shared<Table>("movies", schema);
  for (size_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i)));
    row.push_back(i % 7 == 3 ? Value::Null()
                             : Value::Int(1950 + static_cast<int64_t>(i % 70)));
    row.push_back(i % 5 == 2 ? Value::Null()
                             : Value::Double((i % 100) / 100.0));
    row.push_back(Value::Str(kGenres[i % 4]));
    row.push_back(Value::Bool(i % 3 == 0));
    t->AppendRow(std::move(row), static_cast<int64_t>(i + 1));
  }
  return t;
}

/// Cell-by-cell equality including value types and per-row lids.
void ExpectIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_TRUE(a.schema() == b.schema())
      << a.schema().ToString() << " vs " << b.schema().ToString();
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.row_lid(r), b.row_lid(r)) << "lid at row " << r;
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      Value va = a.at(r, c);
      Value vb = b.at(r, c);
      EXPECT_EQ(va.type(), vb.type()) << "type at (" << r << "," << c << ")";
      EXPECT_EQ(va.ToString(), vb.ToString())
          << "value at (" << r << "," << c << ")";
    }
  }
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

// ------------------------------------------------- ColumnVector encoding

TEST(ColumnVectorTest, EncodingFollowsFirstNonNull) {
  ColumnVector c;
  c.AppendNull();
  c.Append(Value::Int(7));
  EXPECT_EQ(c.encoding(), ColumnEncoding::kInt);
  EXPECT_TRUE(c.Get(0).is_null());
  EXPECT_EQ(c.Get(1).type(), DataType::kInt);
  EXPECT_EQ(c.Get(1).AsInt(), 7);
}

TEST(ColumnVectorTest, MixedTypesDemoteButRoundTrip) {
  ColumnVector c;
  c.Append(Value::Int(1));
  c.Append(Value::Str("two"));
  c.Append(Value::Double(3.5));
  c.AppendNull();
  EXPECT_EQ(c.encoding(), ColumnEncoding::kMixed);
  EXPECT_EQ(c.Get(0).type(), DataType::kInt);
  EXPECT_EQ(c.Get(1).AsString(), "two");
  EXPECT_EQ(c.Get(2).type(), DataType::kDouble);
  EXPECT_TRUE(c.Get(3).is_null());
}

TEST(ColumnVectorTest, DictEncodesRepeatedStrings) {
  ColumnVector c;
  for (int i = 0; i < 100; ++i) {
    c.Append(Value::Str(i % 2 == 0 ? "even" : "odd"));
  }
  EXPECT_EQ(c.encoding(), ColumnEncoding::kDict);
  EXPECT_EQ(c.dict_size(), 2u);
  EXPECT_EQ(c.Get(40).AsString(), "even");
  EXPECT_EQ(c.Get(41).AsString(), "odd");
}

TEST(ColumnVectorTest, AppendRangeRemapsDictCodes) {
  ColumnVector a;
  a.Append(Value::Str("x"));
  a.Append(Value::Str("y"));
  ColumnVector b;
  b.Append(Value::Str("y"));  // "y" gets code 0 here, code 1 in `a`
  b.AppendRange(a, 0, 2);
  EXPECT_EQ(b.Get(1).AsString(), "x");
  EXPECT_EQ(b.Get(2).AsString(), "y");
}

TEST(ColumnVectorTest, HashAtMatchesValueHash) {
  auto t = MakeMovies(64);
  for (size_t c = 0; c < t->schema().num_columns(); ++c) {
    for (size_t r = 0; r < t->num_rows(); ++r) {
      EXPECT_EQ(t->column(c).HashAt(r), t->at(r, c).Hash())
          << "(" << r << "," << c << ")";
    }
  }
}

TEST(ColumnVectorTest, FingerprintIsEncodingIndependent) {
  // Same logical strings stored dict-encoded vs demoted to kMixed: the
  // fingerprint hashes logical cells, not the physical layout.
  ColumnVector dict;
  dict.Append(Value::Str("a"));
  dict.Append(Value::Str("b"));
  dict.Append(Value::Str("a"));
  EXPECT_EQ(dict.encoding(), ColumnEncoding::kDict);
  ColumnVector demoted;
  demoted.Append(Value::Str("a"));
  demoted.Append(Value::Str("b"));
  demoted.Append(Value::Str("a"));
  demoted.Append(Value::Int(0));  // demotes the whole column after the fact
  EXPECT_EQ(demoted.encoding(), ColumnEncoding::kMixed);
  EXPECT_EQ(dict.FingerprintRange(0, 3), demoted.FingerprintRange(0, 3));
  // Numeric cells hash equal across INT and DOUBLE storage when the
  // values compare equal (3 == 3.0), matching Value::Hash.
  ColumnVector ints;
  ints.Append(Value::Int(3));
  ColumnVector doubles;
  doubles.Append(Value::Double(3.0));
  EXPECT_EQ(ints.FingerprintRange(0, 1), doubles.FingerprintRange(0, 1));
}

// ------------------------------------------------------ Table facade

TEST(ColumnarTableTest, RoundTripPreservesTypesAndLids) {
  auto t = MakeMovies(50);
  EXPECT_EQ(t->at(0, 0).type(), DataType::kInt);
  EXPECT_EQ(t->at(0, 2).type(), DataType::kDouble);
  EXPECT_EQ(t->at(0, 3).type(), DataType::kString);
  EXPECT_EQ(t->at(0, 4).type(), DataType::kBool);
  EXPECT_TRUE(t->at(3, 1).is_null());
  EXPECT_TRUE(t->at(2, 2).is_null());
  EXPECT_EQ(t->row_lid(49), 50);
  Row r7 = t->row(7);
  ASSERT_EQ(r7.size(), 5u);
  EXPECT_EQ(r7[0].AsInt(), 7);
}

TEST(ColumnarTableTest, SliceIsZeroCopyView) {
  auto t = MakeMovies(100);
  Table s = t->Slice(10, 30);
  EXPECT_TRUE(s.is_view());
  EXPECT_EQ(s.offset(), 10u);
  EXPECT_EQ(s.num_rows(), 20u);
  // Shares the parent's column buffers: same object identity.
  EXPECT_EQ(&s.column(0), &t->column(0));
  EXPECT_EQ(s.at(0, 0).AsInt(), 10);
  EXPECT_EQ(s.row_lid(0), 11);
  EXPECT_EQ(s.table_lid(), t->table_lid());
}

TEST(ColumnarTableTest, SliceClampsOutOfRangeBounds) {
  auto t = MakeMovies(10);
  EXPECT_EQ(t->Slice(20, 30).num_rows(), 0u);  // begin past the end
  EXPECT_EQ(t->Slice(5, 100).num_rows(), 5u);  // end clamped
  EXPECT_EQ(t->Slice(7, 3).num_rows(), 0u);    // inverted window
  EXPECT_EQ(t->Head(3).num_rows(), 3u);
  EXPECT_EQ(t->Head(3).name(), "movies_sample");
  EXPECT_EQ(t->Head(99).num_rows(), 10u);
}

TEST(ColumnarTableTest, MutatingViewDetachesFromParent) {
  auto t = MakeMovies(10);
  Table s = t->Slice(0, 5);
  s.AppendRow({Value::Int(999), Value::Int(2000), Value::Double(0.5),
               Value::Str("new"), Value::Bool(false)},
              777);
  EXPECT_EQ(s.num_rows(), 6u);
  EXPECT_EQ(s.at(5, 0).AsInt(), 999);
  EXPECT_EQ(s.row_lid(5), 777);
  // Parent untouched.
  EXPECT_EQ(t->num_rows(), 10u);
  EXPECT_EQ(t->at(5, 0).AsInt(), 5);
}

TEST(ColumnarTableTest, CopyOnWritePreservesValueSemantics) {
  auto t = MakeMovies(10);
  Table copy = *t;
  copy.set_row_lid(0, 4242);
  EXPECT_EQ(copy.row_lid(0), 4242);
  EXPECT_EQ(t->row_lid(0), 1);
  copy.AppendRow(t->row(0), 0);
  EXPECT_EQ(copy.num_rows(), 11u);
  EXPECT_EQ(t->num_rows(), 10u);
}

TEST(ColumnarTableTest, AppendSliceAndGatherMatchRowAppends) {
  auto t = MakeMovies(40);
  Table by_rows("a", t->schema());
  for (size_t r = 5; r < 25; ++r) by_rows.AppendRow(t->row(r), t->row_lid(r));
  Table by_slice("a", t->schema());
  by_slice.AppendSlice(*t, 5, 25);
  ExpectIdentical(by_rows, by_slice);

  std::vector<uint32_t> sel = {3, 3, 17, 0, 39};
  Table by_rows2("g", t->schema());
  for (uint32_t r : sel) by_rows2.AppendRow(t->row(r), t->row_lid(r));
  Table by_gather("g", t->schema());
  by_gather.AppendGather(*t, sel.data(), sel.size());
  ExpectIdentical(by_rows2, by_gather);
}

TEST(ColumnarTableTest, AppendSliceFromViewTranslatesOffsets) {
  auto t = MakeMovies(30);
  Table view = t->Slice(10, 25);
  Table out("o", t->schema());
  out.AppendSlice(view, 2, 7);  // rows 12..17 of the parent
  ASSERT_EQ(out.num_rows(), 5u);
  EXPECT_EQ(out.at(0, 0).AsInt(), 12);
  EXPECT_EQ(out.row_lid(4), 17);
}

TEST(ColumnarTableTest, FingerprintSameForViewAndCopy) {
  auto t = MakeMovies(64);
  Table view = t->Slice(16, 48);
  Table copy("copy", t->schema());
  copy.AppendSlice(*t, 16, 48);
  EXPECT_EQ(view.Fingerprint(), copy.Fingerprint());
  EXPECT_NE(view.Fingerprint(), t->Fingerprint());
}

TEST(ColumnarTableTest, ValidateStillCatchesRaggedRows) {
  Schema s({{"a", DataType::kInt}, {"b", DataType::kInt}});
  Table t("rag", s);
  t.AppendRow({Value::Int(1), Value::Int(2)});
  t.AppendRow({Value::Int(3)});
  Status st = t.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("row 1"), std::string::npos);
}

// -------------------------------------------- chunked vs row execution

/// Operator-tree factories evaluated under both Materialize flavors.
struct OpCase {
  std::string name;
  std::function<OperatorPtr(std::shared_ptr<Table>)> make;
};

std::vector<OpCase> DifferentialCases() {
  std::vector<OpCase> cases;
  cases.push_back({"scan", [](std::shared_ptr<Table> t) {
                     return MakeSeqScan(std::move(t));
                   }});
  cases.push_back({"filter_fast_path", [](std::shared_ptr<Table> t) {
                     // column <cmp> literal over INT: tight-loop select.
                     return MakeFilter(
                         MakeSeqScan(std::move(t)),
                         Expr::Binary(BinaryOp::kGe, Expr::Column("year"),
                                      Expr::Literal(Value::Int(1990))));
                   }});
  cases.push_back({"filter_and_or", [](std::shared_ptr<Table> t) {
                     auto pred = Expr::Binary(
                         BinaryOp::kOr,
                         Expr::Binary(
                             BinaryOp::kAnd,
                             Expr::Binary(BinaryOp::kLt, Expr::Column("score"),
                                          Expr::Literal(Value::Double(0.3))),
                             Expr::Column("watched")),
                         Expr::Binary(BinaryOp::kEq, Expr::Column("genre"),
                                      Expr::Literal(Value::Str("drama"))));
                     return MakeFilter(MakeSeqScan(std::move(t)), pred);
                   }});
  cases.push_back({"project_exprs", [](std::shared_ptr<Table> t) {
                     std::vector<ExprPtr> exprs;
                     exprs.push_back(Expr::Column("mid"));
                     exprs.push_back(Expr::Binary(
                         BinaryOp::kAdd, Expr::Column("score"),
                         Expr::Literal(Value::Double(1.0))));
                     exprs.push_back(Expr::Call(
                         "upper", {Expr::Column("genre")}));
                     exprs.push_back(Expr::Binary(
                         BinaryOp::kAdd, Expr::Column("genre"),
                         Expr::Literal(Value::Str("!"))));
                     return MakeProject(MakeSeqScan(std::move(t)),
                                        std::move(exprs),
                                        {"mid", "s1", "g", "gx"});
                   }});
  cases.push_back({"filter_project_stack", [](std::shared_ptr<Table> t) {
                     auto f = MakeFilter(
                         MakeSeqScan(std::move(t)),
                         Expr::Binary(BinaryOp::kGt, Expr::Column("score"),
                                      Expr::Literal(Value::Double(0.25))));
                     std::vector<ExprPtr> exprs;
                     exprs.push_back(Expr::Column("genre"));
                     exprs.push_back(Expr::Binary(BinaryOp::kMul,
                                                  Expr::Column("mid"),
                                                  Expr::Column("mid")));
                     auto p = MakeProject(std::move(f), std::move(exprs),
                                          {"genre", "mid_sq"});
                     return MakeFilter(
                         std::move(p),
                         Expr::Binary(BinaryOp::kNe, Expr::Column("genre"),
                                      Expr::Literal(Value::Str("horror"))));
                   }});
  cases.push_back({"join_columnar_build", [](std::shared_ptr<Table> t) {
                     // Self-join on genre: exercises the columnar build
                     // side, hash collision filtering and Concat schema.
                     auto right = MakeFilter(
                         MakeSeqScan(t),
                         Expr::Binary(BinaryOp::kLt, Expr::Column("mid"),
                                      Expr::Literal(Value::Int(6))));
                     return MakeHashJoin(MakeSeqScan(t), std::move(right),
                                         "genre", "genre");
                   }});
  cases.push_back({"aggregate_adapter", [](std::shared_ptr<Table> t) {
                     return MakeAggregate(
                         MakeSeqScan(std::move(t)), {"genre"},
                         {{AggFn::kCount, "", "n"},
                          {AggFn::kAvg, "score", "avg_score"},
                          {AggFn::kMax, "year", "max_year"}});
                   }});
  cases.push_back({"sort_limit_distinct", [](std::shared_ptr<Table> t) {
                     std::vector<ExprPtr> exprs;
                     exprs.push_back(Expr::Column("genre"));
                     auto p = MakeProject(MakeSeqScan(std::move(t)),
                                          std::move(exprs), {"genre"});
                     auto d = MakeDistinct(std::move(p));
                     auto s = MakeSort(std::move(d), {{"genre", false}});
                     return MakeLimit(std::move(s), 3);
                   }});
  return cases;
}

TEST(ChunkedExecutionTest, ByteIdenticalToRowExecution) {
  // Sized to cross several chunk boundaries (kChunkRows = 2048).
  auto t = MakeMovies(3 * kChunkRows + 123);
  for (const auto& c : DifferentialCases()) {
    SCOPED_TRACE(c.name);
    auto op_rows = c.make(t);
    auto op_chunks = c.make(t);
    auto by_rows = MaterializeRows(op_rows.get(), "out");
    auto by_chunks = Materialize(op_chunks.get(), "out");
    ASSERT_TRUE(by_rows.ok()) << by_rows.status().ToString();
    ASSERT_TRUE(by_chunks.ok()) << by_chunks.status().ToString();
    ExpectIdentical(by_rows.value(), by_chunks.value());
  }
}

TEST(ChunkedExecutionTest, EmptyInputAndEmptySelection) {
  auto t = MakeMovies(0);
  auto op = MakeFilter(MakeSeqScan(t),
                       Expr::Binary(BinaryOp::kGt, Expr::Column("mid"),
                                    Expr::Literal(Value::Int(0))));
  auto r = Materialize(op.get(), "out");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);

  // Predicate selecting nothing over a non-empty table.
  auto t2 = MakeMovies(100);
  auto op2 = MakeFilter(MakeSeqScan(t2),
                        Expr::Binary(BinaryOp::kLt, Expr::Column("mid"),
                                     Expr::Literal(Value::Int(0))));
  auto r2 = Materialize(op2.get(), "out");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->num_rows(), 0u);
}

TEST(ChunkedExecutionTest, DivisionByZeroSurfacesFromChunkPath) {
  auto t = MakeMovies(10);
  std::vector<ExprPtr> exprs;
  exprs.push_back(Expr::Binary(BinaryOp::kDiv, Expr::Column("mid"),
                               Expr::Literal(Value::Int(0))));
  auto op = MakeProject(MakeSeqScan(t), std::move(exprs), {"bad"});
  auto r = Materialize(op.get(), "out");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("division by zero"),
            std::string::npos);
}

TEST(ChunkedExecutionTest, ShortCircuitHidesErrorsLikeInterpreter) {
  // mid > 0 is false for row 0 only; the rhs divides by `mid`, which is
  // zero exactly on that row. AND must not evaluate the rhs there.
  auto t = MakeMovies(50);
  auto pred = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kGt, Expr::Column("mid"),
                   Expr::Literal(Value::Int(0))),
      Expr::Binary(BinaryOp::kGt,
                   Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value::Int(100)),
                                Expr::Column("mid")),
                   Expr::Literal(Value::Int(3))));
  auto op_rows = MakeFilter(MakeSeqScan(t), pred);
  auto op_chunks = MakeFilter(MakeSeqScan(t), pred);
  auto by_rows = MaterializeRows(op_rows.get(), "out");
  auto by_chunks = Materialize(op_chunks.get(), "out");
  ASSERT_TRUE(by_rows.ok()) << by_rows.status().ToString();
  ASSERT_TRUE(by_chunks.ok()) << by_chunks.status().ToString();
  ExpectIdentical(by_rows.value(), by_chunks.value());
}

// -------------------------------------- morsel + cache differential

TEST(ColumnarCacheTest, FingerprintInvariantAcrossLayouts) {
  auto t = MakeMovies(200);
  // A flattened copy assembled row-at-a-time.
  Table rowwise("movies", t->schema());
  for (size_t r = 0; r < t->num_rows(); ++r) {
    rowwise.AppendRow(t->row(r), t->row_lid(r));
  }
  EXPECT_EQ(service::FingerprintTable(*t),
            service::FingerprintTable(rowwise));
  // A zero-copy view over the full range keys identically too.
  Table view = t->Slice(0, t->num_rows());
  EXPECT_EQ(service::FingerprintTable(*t), service::FingerprintTable(view));
}

TEST(ColumnarCacheTest, MorselEvaluationHitRateUnchanged) {
  // Evaluate a cacheable FAO function sequentially and morsel-parallel;
  // results and warm-run cache hit counts must agree (morsel slices are
  // zero-copy views now, so this also covers view fingerprinting).
  auto t = MakeMovies(64);

  fao::FunctionSpec spec;
  spec.name = "score_keywords";
  spec.template_id = "keyword_similarity_score";
  Json kw = Json::Array();
  kw.Append(Json::Str("action"));
  spec.params.Set("keywords", std::move(kw));
  spec.params.Set("did_column", Json::Str("mid"));
  spec.params.Set("output_column", Json::Str("kw_score"));

  Catalog catalog;  // empty: every did misses, scores stay deterministic
  auto run = [&](size_t morsel_size, common::ThreadPool* pool,
                 service::ResultCache* cache) -> Result<Table> {
    fao::ExecContext ctx;
    ctx.catalog = &catalog;
    ctx.result_cache = cache;
    fao::MorselOptions morsels;
    morsels.morsel_size = morsel_size;
    morsels.pool = pool;
    return fao::EvaluateWithMorsels(spec, {t}, &ctx, morsels);
  };

  service::ResultCache cache_seq;
  auto seq_cold = run(0, nullptr, &cache_seq);
  auto seq_warm = run(0, nullptr, &cache_seq);
  ASSERT_TRUE(seq_cold.ok()) << seq_cold.status().ToString();
  ASSERT_TRUE(seq_warm.ok());

  common::ThreadPool pool(4);
  service::ResultCache cache_par;
  auto par_cold = run(16, &pool, &cache_par);
  auto par_warm = run(16, &pool, &cache_par);
  ASSERT_TRUE(par_cold.ok()) << par_cold.status().ToString();
  ASSERT_TRUE(par_warm.ok());

  ExpectIdentical(seq_cold.value(), seq_warm.value());
  ExpectIdentical(par_cold.value(), par_warm.value());
  // Same cells regardless of morsel partitioning (lids included).
  ExpectIdentical(seq_cold.value(), par_cold.value());

  // Warm hit rate: every morsel (or the whole table) hits on the rerun.
  auto seq_stats = cache_seq.stats();
  auto par_stats = cache_par.stats();
  EXPECT_GT(seq_stats.hits, 0);
  EXPECT_GT(par_stats.hits, 0);
  EXPECT_EQ(seq_stats.hits, seq_stats.insertions);
  EXPECT_EQ(par_stats.hits, par_stats.insertions);
}

}  // namespace
}  // namespace kathdb::rel
