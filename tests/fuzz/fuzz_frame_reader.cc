/// \file fuzz_frame_reader.cc
/// \brief libFuzzer harness for the kathdb-wire/1 deframer.
///
/// The FrameReader is the first code that touches attacker-controlled
/// bytes on every connection, so it must never crash, overflow, or spin
/// regardless of input. The harness replays the fuzz input twice: once
/// as a single Feed() and once split byte-by-byte, asserting both paths
/// deframe to the identical frame sequence — the split-read invariant
/// the event loop depends on.
///
/// Built two ways (see CMakeLists):
///  - with clang + -fsanitize=fuzzer as a real fuzzer (KATHDB_BUILD_FUZZERS)
///  - with any compiler against replay_main.cc as the corpus-replay
///    regression test fuzz_frame_reader_corpus_replay.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/wire.h"

namespace {

// Small cap so the fuzzer can reach the "oversized frame" rejection with
// a 5-byte input instead of having to synthesize a 1 MiB one.
constexpr size_t kMaxFrameBytes = 4096;

struct DeframeResult {
  std::vector<kathdb::net::Frame> frames;
  bool errored = false;
};

DeframeResult Deframe(kathdb::net::FrameReader& reader) {
  DeframeResult out;
  kathdb::net::Frame frame;
  for (;;) {
    auto next = reader.Next(&frame);
    if (!next.ok()) {
      out.errored = true;
      return out;
    }
    if (!next.value()) return out;  // need more bytes
    out.frames.push_back(frame);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Path 1: the whole input in one Feed (large read from the socket).
  kathdb::net::FrameReader bulk(kMaxFrameBytes);
  bulk.Feed(reinterpret_cast<const char*>(data), size);
  DeframeResult a = Deframe(bulk);

  // Path 2: one byte per Feed (worst-case read fragmentation), draining
  // completed frames after every byte as the event loop does.
  kathdb::net::FrameReader trickle(kMaxFrameBytes);
  DeframeResult b;
  for (size_t i = 0; i < size && !b.errored; ++i) {
    trickle.Feed(reinterpret_cast<const char*>(data) + i, 1);
    DeframeResult step = Deframe(trickle);
    b.errored = step.errored;
    for (auto& f : step.frames) b.frames.push_back(std::move(f));
  }

  // Split-read invariant: fragmentation must not change the result.
  // (A trickle reader that already errored may have produced fewer
  // frames only if the bulk reader errored too.)
  if (a.errored != b.errored) std::abort();
  if (a.frames.size() != b.frames.size()) std::abort();
  for (size_t i = 0; i < a.frames.size(); ++i) {
    if (a.frames[i].op != b.frames[i].op ||
        a.frames[i].payload != b.frames[i].payload) {
      std::abort();
    }
    // Re-encoding a deframed frame must reproduce framable bytes.
    std::string rt = kathdb::net::EncodeFrame(a.frames[i].op,
                                              a.frames[i].payload);
    kathdb::net::FrameReader check(kMaxFrameBytes);
    check.Feed(rt.data(), rt.size());
    kathdb::net::Frame again;
    auto ok = check.Next(&again);
    if (!ok.ok() || !ok.value() || again.op != a.frames[i].op ||
        again.payload != a.frames[i].payload) {
      std::abort();
    }
  }
  return 0;
}
