/// \file replay_main.cc
/// \brief Corpus replay driver: runs LLVMFuzzerTestOneInput over every
/// file in the corpus directories given on the command line.
///
/// This is what makes the checked-in seed corpus a plain regression
/// test: CI without clang/libFuzzer still executes every interesting
/// input (including any past crash reproducers) through the exact
/// harness the fuzzer uses. Exit 0 = all inputs survived.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::vector<std::string> files;
    std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& e : std::filesystem::directory_iterator(p)) {
        if (e.is_regular_file()) files.push_back(e.path().string());
      }
    } else {
      files.push_back(p.string());
    }
    for (const auto& f : files) {
      std::ifstream in(f, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n", f.c_str());
        return 2;
      }
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                             bytes.size());
      ++ran;
    }
  }
  if (ran == 0) {
    std::fprintf(stderr, "no corpus files found\n");
    return 2;
  }
  std::printf("replayed %zu corpus input(s), no crashes\n", ran);
  return 0;
}
