/// \file gen_corpus.cc
/// \brief Deterministic seed-corpus generator for the wire fuzzers.
///
/// Writes the seed inputs under <outdir>/fuzz_frame_reader and
/// <outdir>/fuzz_table_columnar. The outputs are checked in under
/// tests/fuzz/corpus/ — regenerate (and re-commit) after changing the
/// frame format or the columnar encoding:
///
///     cmake --build build --target fuzz_gen_corpus
///     ./build/fuzz_gen_corpus tests/fuzz/corpus
///
/// Seeds cover every frame-level edge (valid single/multi, zero-length,
/// oversized, truncated header/body, garbage) and every columnar column
/// encoding (EMPTY/BOOL/INT/DOUBLE/DICT/MIXED, with and without NULLs)
/// plus truncations and corrupted tags, so the replay regression test
/// exercises the same branches a fuzzer finds first.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "net/wire.h"
#include "relational/table.h"

namespace {

using kathdb::net::EncodeFrame;
using kathdb::net::EncodeTableColumnar;
using kathdb::net::Op;
using kathdb::net::PayloadWriter;
using kathdb::rel::DataType;
using kathdb::rel::Row;
using kathdb::rel::Schema;
using kathdb::rel::Table;
using kathdb::rel::Value;

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const std::string& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string U32Be(uint32_t v) {
  std::string s(4, '\0');
  s[0] = static_cast<char>(v >> 24);
  s[1] = static_cast<char>(v >> 16);
  s[2] = static_cast<char>(v >> 8);
  s[3] = static_cast<char>(v);
  return s;
}

void GenFrameSeeds(const std::filesystem::path& dir) {
  // Valid traffic.
  PayloadWriter hello;
  hello.PutString(kathdb::net::kWireMagic);
  WriteSeed(dir, "hello", EncodeFrame(Op::kHello, hello.Take()));
  WriteSeed(dir, "ping", EncodeFrame(Op::kPing, "echo me"));
  PayloadWriter query;
  query.PutU64(1);
  query.PutU64(7);
  query.PutString("find exciting films");
  query.PutU32(1);
  query.PutString("yes");
  std::string query_frame = EncodeFrame(Op::kQuery, query.Take());
  WriteSeed(dir, "query", query_frame);
  WriteSeed(dir, "back_to_back",
            EncodeFrame(Op::kPing, "a") + EncodeFrame(Op::kPing, "b") +
                query_frame);
  WriteSeed(dir, "empty_payload", EncodeFrame(Op::kStats, ""));

  // Protocol violations and truncations.
  WriteSeed(dir, "zero_length", U32Be(0));
  WriteSeed(dir, "oversized", U32Be(0xFFFFFFFFu) + std::string(16, 'x'));
  WriteSeed(dir, "truncated_header", U32Be(10).substr(0, 2));
  WriteSeed(dir, "truncated_body", U32Be(100) + std::string(20, 'q'));
  WriteSeed(dir, "garbage", std::string("\x00\x01garbage not a frame", 21));
  WriteSeed(dir, "valid_then_truncated",
            EncodeFrame(Op::kPing, "ok") + U32Be(50) + "half");
}

std::string Columnar(const Table& t) {
  PayloadWriter w;
  EncodeTableColumnar(t, &w);
  return w.Take();
}

void GenColumnarSeeds(const std::filesystem::path& dir) {
  // Empty table (schema only).
  Schema empty_schema;
  empty_schema.AddColumn("x", DataType::kInt);
  empty_schema.AddColumn("s", DataType::kString);
  WriteSeed(dir, "empty_table", Columnar(Table("t", empty_schema)));

  // Every column encoding in one table, with NULLs in each column.
  Schema all;
  all.AddColumn("b", DataType::kBool);
  all.AddColumn("i", DataType::kInt);
  all.AddColumn("d", DataType::kDouble);
  all.AddColumn("s", DataType::kString);
  Table mixed("t", all);
  for (int r = 0; r < 70; ++r) {  // >64 rows: two validity words
    Row row;
    row.push_back(r % 5 == 0 ? Value::Null() : Value::Bool(r % 2 == 0));
    row.push_back(r % 7 == 0 ? Value::Null()
                             : Value::Int(r * 1'000'003LL - 500'000));
    row.push_back(r % 4 == 0 ? Value::Null() : Value::Double(r / 3.0));
    row.push_back(r % 6 == 0 ? Value::Null()
                             : Value::Str(r % 3 == 0 ? "" : "str" +
                                          std::to_string(r % 8)));
    mixed.AppendRow(std::move(row));
  }
  std::string mixed_bytes = Columnar(mixed);
  WriteSeed(dir, "all_types_with_nulls", mixed_bytes);

  // All-valid (no validity words) and all-NULL (EMPTY block) columns.
  Schema dense_schema;
  dense_schema.AddColumn("i", DataType::kInt);
  dense_schema.AddColumn("gone", DataType::kString);
  Table dense("t", dense_schema);
  for (int r = 0; r < 8; ++r) {
    dense.AppendRow({Value::Int(r), Value::Null()});
  }
  WriteSeed(dir, "dense_and_empty_cols", Columnar(dense));

  // A column that decodes as MIXED: per-row type tags.
  Schema mixed_col_schema;
  mixed_col_schema.AddColumn("any", DataType::kString);
  Table poly("t", mixed_col_schema);
  poly.AppendRow({Value::Int(42)});
  poly.AppendRow({Value::Str("answer")});
  poly.AppendRow({Value::Double(6.5)});
  poly.AppendRow({Value::Bool(true)});
  poly.AppendRow({Value::Null()});
  WriteSeed(dir, "mixed_type_column", Columnar(poly));

  // Malformed variants of a valid payload: truncations at interesting
  // offsets and a corrupted column tag.
  WriteSeed(dir, "truncated_schema", mixed_bytes.substr(0, 6));
  WriteSeed(dir, "truncated_mid_block",
            mixed_bytes.substr(0, mixed_bytes.size() / 2));
  WriteSeed(dir, "truncated_last_byte",
            mixed_bytes.substr(0, mixed_bytes.size() - 1));
  std::string bad_tag = mixed_bytes;
  bad_tag[bad_tag.size() / 3] = '\x7F';
  WriteSeed(dir, "corrupted_tag", bad_tag);
  // Absurd counts: 4 billion columns / rows in a tiny payload.
  WriteSeed(dir, "absurd_ncols", U32Be(0xFFFFFFFFu) + "x");
  PayloadWriter absurd_rows;
  absurd_rows.PutU32(0);
  absurd_rows.PutU64(0xFFFFFFFFFFFFFFFFull);
  WriteSeed(dir, "absurd_nrows", absurd_rows.Take());
  WriteSeed(dir, "empty_input", "");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  std::filesystem::path root(argv[1]);
  std::filesystem::path frames = root / "fuzz_frame_reader";
  std::filesystem::path columnar = root / "fuzz_table_columnar";
  std::filesystem::create_directories(frames);
  std::filesystem::create_directories(columnar);
  GenFrameSeeds(frames);
  GenColumnarSeeds(columnar);
  std::printf("seed corpus written under %s\n", root.string().c_str());
  return 0;
}
