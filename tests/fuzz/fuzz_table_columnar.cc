/// \file fuzz_table_columnar.cc
/// \brief libFuzzer harness for the PARTIAL_RESULT_COL columnar decoder.
///
/// DecodeTableColumnar parses the densest attacker-reachable format in
/// the protocol: varints, validity bitmaps, dictionary indirection and
/// per-row type tags. The harness feeds it arbitrary bytes (must reject
/// or accept, never crash) and, when the input decodes, re-encodes the
/// table and decodes again, asserting the round trip is value-identical
/// — the invariant the CSV/columnar encoding negotiation relies on.
///
/// Built two ways (see CMakeLists):
///  - with clang + -fsanitize=fuzzer as a real fuzzer (KATHDB_BUILD_FUZZERS)
///  - with any compiler against replay_main.cc as the corpus-replay
///    regression test fuzz_table_columnar_corpus_replay.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "net/wire.h"
#include "relational/table.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Decoded tables allocate nrows x ncols cells; bound the input so the
  // fuzzer explores parse logic instead of allocator limits.
  if (size > 1 << 16) return 0;
  std::string payload(reinterpret_cast<const char*>(data), size);

  kathdb::net::PayloadReader r(payload);
  auto decoded = kathdb::net::DecodeTableColumnar(&r, "fuzz");
  if (!decoded.ok()) return 0;  // rejected cleanly — fine

  // Accepted: the decoded table must survive an encode/decode round
  // trip bit-for-bit at the value level.
  const kathdb::rel::Table& t = decoded.value();
  kathdb::net::PayloadWriter w;
  kathdb::net::EncodeTableColumnar(t, &w);
  std::string reencoded = w.Take();
  kathdb::net::PayloadReader r2(reencoded);
  auto redecoded = kathdb::net::DecodeTableColumnar(&r2, "fuzz");
  if (!redecoded.ok()) std::abort();  // our own encoder must parse

  const kathdb::rel::Table& u = redecoded.value();
  if (t.num_rows() != u.num_rows() ||
      t.schema().num_columns() != u.schema().num_columns()) {
    std::abort();
  }
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    if (t.schema().column(c).name != u.schema().column(c).name) std::abort();
  }
  for (size_t row = 0; row < t.num_rows(); ++row) {
    for (size_t col = 0; col < t.schema().num_columns(); ++col) {
      if (t.at(row, col).ToString() != u.at(row, col).ToString()) {
        std::abort();
      }
    }
  }
  return 0;
}
