// Unit tests for src/common: Status/Result, strings, JSON, RNG.

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace kathdb {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, SyntacticVsSemanticClassification) {
  EXPECT_TRUE(Status::SyntacticError("x").IsSyntacticError());
  EXPECT_FALSE(Status::SyntacticError("x").IsSemanticError());
  EXPECT_TRUE(Status::SemanticError("x").IsSemanticError());
  EXPECT_FALSE(Status::SemanticError("x").IsSyntacticError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

Result<int> Doubled(Result<int> in) {
  KATHDB_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  Result<int> err = Doubled(Status::NotFound("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------- strings

TEST(StringsTest, ToLower) { EXPECT_EQ(ToLower("AbC-9"), "abc-9"); }

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y"}, "--"), "x--y");
}

TEST(StringsTest, SplitAnyDropsEmpty) {
  auto parts = SplitAny("a, b;;c", ", ;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("Guilty by Suspicion", "SUSPICION"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abd"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringsTest, TokenizeLowercasesAndStripsPunct) {
  auto toks = Tokenize("The movie's plot: GUNS, explosions!");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0], "the");
  EXPECT_EQ(toks[2], "s");
  EXPECT_EQ(toks[4], "guns");
}

TEST(StringsTest, ApproxTokenCountCountsWordsAndPunct) {
  EXPECT_EQ(ApproxTokenCount("hello world"), 2);
  EXPECT_EQ(ApproxTokenCount(""), 0);
  EXPECT_GT(ApproxTokenCount("a, b, c"), 3);
}

TEST(StringsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(0.5, 6), "0.5");
  EXPECT_EQ(FormatDouble(2.0, 6), "2");
  EXPECT_EQ(FormatDouble(0.999999, 6), "0.999999");
}

// ------------------------------------------------------------------ JSON

TEST(JsonTest, BuildAndDumpObjectPreservesKeyOrder) {
  Json obj = Json::Object();
  obj.Set("name", Json::Str("classify_boring"));
  obj.Set("inputs", Json::Array());
  obj.Set("output", Json::Str("films_with_boring_flag"));
  std::string s = obj.Dump();
  EXPECT_LT(s.find("name"), s.find("inputs"));
  EXPECT_LT(s.find("inputs"), s.find("output"));
}

TEST(JsonTest, RoundTripNested) {
  Json arr = Json::Array();
  arr.Append(Json::Int(1));
  arr.Append(Json::Double(2.5));
  arr.Append(Json::Bool(false));
  arr.Append(Json::Null());
  Json obj = Json::Object();
  obj.Set("xs", arr);
  obj.Set("s", Json::Str("quote\" and \\slash\nnewline"));

  auto parsed = Json::Parse(obj.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& p = parsed.value();
  EXPECT_EQ(p.Get("xs").size(), 4u);
  EXPECT_EQ(p.Get("xs").at(0).AsInt(), 1);
  EXPECT_DOUBLE_EQ(p.Get("xs").at(1).AsDouble(), 2.5);
  EXPECT_FALSE(p.Get("xs").at(2).AsBool());
  EXPECT_TRUE(p.Get("xs").at(3).is_null());
  EXPECT_EQ(p.GetString("s"), "quote\" and \\slash\nnewline");
}

TEST(JsonTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::Parse("{\"a\": }").ok());
  EXPECT_FALSE(Json::Parse("[1, 2").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("'single'").ok());
}

TEST(JsonTest, ParseAcceptsWhitespaceAndUnicodeEscapes) {
  auto r = Json::Parse("  { \"k\" : \"\\u0041\" }  ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().GetString("k"), "A");
}

TEST(JsonTest, GettersWithDefaults) {
  auto r = Json::Parse(R"({"i": 7, "d": 1.5, "b": true, "s": "x"})");
  ASSERT_TRUE(r.ok());
  const Json& j = r.value();
  EXPECT_EQ(j.GetInt("i"), 7);
  EXPECT_EQ(j.GetInt("missing", -1), -1);
  EXPECT_DOUBLE_EQ(j.GetDouble("d"), 1.5);
  EXPECT_TRUE(j.GetBool("b"));
  EXPECT_EQ(j.GetString("s"), "x");
  EXPECT_EQ(j.GetString("missing", "def"), "def");
}

// ------------------------------------------------------------------- RNG

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NextInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, GaussianRoughlyCentered) {
  Rng r(11);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += r.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(RngTest, HashStringStableAndSpread) {
  EXPECT_EQ(HashString("kathdb"), HashString("kathdb"));
  EXPECT_NE(HashString("kathdb"), HashString("kathdc"));
}

}  // namespace
}  // namespace kathdb
