// Unit tests for src/optimizer: coder/profiler/critic, rewrites, cost
// selection.

#include <gtest/gtest.h>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"
#include "optimizer/optimizer.h"
#include "planner/plan_generator.h"

namespace kathdb::opt {
namespace {

using fao::FunctionSignature;
using fao::LogicalPlan;

parser::QueryIntent PaperIntent() {
  parser::QueryIntent intent;
  intent.raw_query = "sort by exciting, boring poster, recent";
  intent.table = "movie_table";
  intent.action = "sort";
  intent.criteria = {{"exciting", "text", "rank", "uncommon scenes", 0.7},
                     {"boring", "image", "filter", "", 1.0},
                     {"recent", "metadata", "rank2", "", 0.3}};
  return intent;
}

LogicalPlan PaperPlan(llm::SimulatedLLM* llm, rel::Catalog* catalog) {
  planner::LogicalPlanGenerator gen(llm, catalog);
  return gen.DraftPlan(PaperIntent(), {});
}

class OptimizerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::DatasetOptions opts;
    opts.num_movies = 16;
    auto ds = data::GenerateMovieDataset(opts);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::move(ds).value();
    db_ = std::make_unique<engine::KathDB>();
    ASSERT_TRUE(data::IngestDataset(dataset_, db_.get()).ok());
    ctx_ = db_->MakeContext();
  }

  data::MovieDataset dataset_;
  std::unique_ptr<engine::KathDB> db_;
  fao::ExecContext ctx_;
};

// ------------------------------------------------------- logical rewrites

TEST_F(OptimizerFixture, PushdownMovesFilterBeforeScoring) {
  LogicalPlan plan = PaperPlan(db_->llm(), db_->catalog());
  LogicalPlan pushed = QueryOptimizer::PushdownFilter(plan);
  ASSERT_EQ(pushed.nodes.size(), plan.nodes.size());
  // classify/filter come right after the scene join.
  size_t join_idx = 0;
  size_t classify_idx = 0;
  size_t score_idx = 0;
  for (size_t i = 0; i < pushed.nodes.size(); ++i) {
    if (pushed.nodes[i].name == "join_scene_graph") join_idx = i;
    if (pushed.nodes[i].name == "classify_boring") classify_idx = i;
    if (pushed.nodes[i].name == "gen_exciting_score") score_idx = i;
  }
  EXPECT_EQ(classify_idx, join_idx + 1);
  EXPECT_GT(score_idx, classify_idx);
  // Chain is rewired: each node's primary input is the previous output.
  for (size_t i = 1; i < pushed.nodes.size(); ++i) {
    EXPECT_EQ(pushed.nodes[i].inputs[0], pushed.nodes[i - 1].output)
        << pushed.nodes[i].name;
  }
}

TEST_F(OptimizerFixture, PushdownIsNoOpWithoutFilter) {
  LogicalPlan plan;
  FunctionSignature sig;
  sig.name = "select_columns";
  sig.inputs = {"movie_table"};
  sig.output = "out";
  plan.nodes = {sig};
  LogicalPlan same = QueryOptimizer::PushdownFilter(plan);
  EXPECT_EQ(same.nodes.size(), 1u);
}

TEST_F(OptimizerFixture, FusionMergesScoringChain) {
  LogicalPlan plan = PaperPlan(db_->llm(), db_->catalog());
  LogicalPlan fused = QueryOptimizer::FuseScoring(plan);
  EXPECT_EQ(fused.nodes.size(), plan.nodes.size() - 2);
  bool has_fused = false;
  for (const auto& n : fused.nodes) {
    EXPECT_NE(n.name, "gen_recency_score");
    EXPECT_NE(n.name, "combine_scores");
    if (n.name == "gen_scores_fused") has_fused = true;
  }
  EXPECT_TRUE(has_fused);
  // The fused node keeps the chain intact.
  EXPECT_EQ(fused.FinalOutput(), plan.FinalOutput());
}

// ------------------------------------------------- synthesis & selection

TEST_F(OptimizerFixture, OptimizeBindsEveryNode) {
  QueryOptimizer optimizer(db_->llm(), db_->registry());
  LogicalPlan plan = PaperPlan(db_->llm(), db_->catalog());
  auto physical = optimizer.Optimize(plan, PaperIntent(), &ctx_);
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  ASSERT_EQ(physical->nodes.size(), plan.nodes.size());
  for (const auto& n : physical->nodes) {
    EXPECT_TRUE(fao::IsKnownTemplate(n.spec.template_id)) << n.sig.name;
    EXPECT_GE(n.spec.ver_id, 1);
    // Every spec is persisted in the registry under its version.
    EXPECT_TRUE(db_->registry()->Version(n.sig.name, n.spec.ver_id).ok());
  }
  EXPECT_EQ(physical->final_output, "films_ranked");
}

TEST_F(OptimizerFixture, KeywordsComeFromTheClarifiedTerm) {
  QueryOptimizer optimizer(db_->llm(), db_->registry());
  LogicalPlan plan = PaperPlan(db_->llm(), db_->catalog());
  auto physical = optimizer.Optimize(plan, PaperIntent(), &ctx_);
  ASSERT_TRUE(physical.ok());
  for (const auto& n : physical->nodes) {
    if (n.sig.name == "gen_exciting_score") {
      ASSERT_TRUE(n.spec.params.Has("keywords"));
      EXPECT_GT(n.spec.params.Get("keywords").size(), 5u);
      EXPECT_EQ(n.spec.params.GetString("output_column"), "exciting_score");
    }
  }
}

TEST_F(OptimizerFixture, RecencyBoundsReadFromData) {
  QueryOptimizer optimizer(db_->llm(), db_->registry());
  LogicalPlan plan = PaperPlan(db_->llm(), db_->catalog());
  auto physical = optimizer.Optimize(plan, PaperIntent(), &ctx_);
  ASSERT_TRUE(physical.ok());
  for (const auto& n : physical->nodes) {
    if (n.sig.name == "gen_recency_score") {
      // Anchors cap the dataset at 1991.
      EXPECT_DOUBLE_EQ(n.spec.params.GetDouble("max_year"), 1991.0);
      EXPECT_LE(n.spec.params.GetDouble("min_year"), 1990.0);
    }
  }
}

TEST_F(OptimizerFixture, CriticFixesInjectedRecencyBug) {
  OptimizerOptions opts;
  opts.inject_recency_bug = true;
  QueryOptimizer optimizer(db_->llm(), db_->registry(), opts);
  LogicalPlan plan = PaperPlan(db_->llm(), db_->catalog());
  auto physical = optimizer.Optimize(plan, PaperIntent(), &ctx_);
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  bool checked = false;
  for (const auto& n : physical->nodes) {
    if (n.sig.name == "gen_recency_score") {
      checked = true;
      // The accepted spec has the corrected direction.
      EXPECT_DOUBLE_EQ(n.spec.params.GetDouble("direction"), 1.0);
      EXPECT_NE(n.spec.source_text.find("critic fix"), std::string::npos);
    }
  }
  EXPECT_TRUE(checked);
  // The profile records at least one critic round on that node.
  bool critic_worked = false;
  for (const auto& p : optimizer.profiles()) {
    if (p.node == "gen_recency_score" && p.critic_rounds > 0) {
      critic_worked = true;
    }
  }
  EXPECT_TRUE(critic_worked);
}

TEST_F(OptimizerFixture, AutoModeProfilesThreeClassifyCandidates) {
  QueryOptimizer optimizer(db_->llm(), db_->registry());
  LogicalPlan plan = PaperPlan(db_->llm(), db_->catalog());
  auto physical = optimizer.Optimize(plan, PaperIntent(), &ctx_);
  ASSERT_TRUE(physical.ok());
  int classify_profiles = 0;
  for (const auto& p : optimizer.profiles()) {
    if (p.node == "classify_boring") ++classify_profiles;
  }
  EXPECT_EQ(classify_profiles, 3);
  // With a noiseless VLM the cheap stats implementation wins.
  for (const auto& n : physical->nodes) {
    if (n.sig.name == "classify_boring") {
      EXPECT_EQ(n.spec.template_id, "classify_boring_stats");
    }
  }
}

TEST_F(OptimizerFixture, ForcedImplIsRespected) {
  for (const char* impl : {"stats", "pixels", "cascade"}) {
    OptimizerOptions opts;
    opts.boring_impl = impl;
    QueryOptimizer optimizer(db_->llm(), db_->registry(), opts);
    LogicalPlan plan = PaperPlan(db_->llm(), db_->catalog());
    auto physical = optimizer.Optimize(plan, PaperIntent(), &ctx_);
    ASSERT_TRUE(physical.ok()) << impl << ": "
                               << physical.status().ToString();
    for (const auto& n : physical->nodes) {
      if (n.sig.name == "classify_boring") {
        EXPECT_EQ(n.spec.template_id,
                  std::string("classify_boring_") + impl);
      }
    }
  }
}

TEST_F(OptimizerFixture, FusionOptionProducesFusedPhysicalPlan) {
  OptimizerOptions opts;
  opts.enable_fusion = true;
  QueryOptimizer optimizer(db_->llm(), db_->registry(), opts);
  LogicalPlan plan = PaperPlan(db_->llm(), db_->catalog());
  auto physical = optimizer.Optimize(plan, PaperIntent(), &ctx_);
  ASSERT_TRUE(physical.ok());
  bool fused = false;
  for (const auto& n : physical->nodes) {
    if (n.spec.template_id == "fused_scores") fused = true;
  }
  EXPECT_TRUE(fused);
  EXPECT_EQ(physical->nodes.size(), 8u);  // 10 - 2 merged
}

TEST_F(OptimizerFixture, PlanTextRendersTemplatesAndVersions) {
  QueryOptimizer optimizer(db_->llm(), db_->registry());
  LogicalPlan plan = PaperPlan(db_->llm(), db_->catalog());
  auto physical = optimizer.Optimize(plan, PaperIntent(), &ctx_);
  ASSERT_TRUE(physical.ok());
  std::string text = physical->ToText();
  EXPECT_NE(text.find("classify_boring"), std::string::npos);
  EXPECT_NE(text.find("v1"), std::string::npos);
  EXPECT_NE(text.find("one_to_one"), std::string::npos);
}

}  // namespace
}  // namespace kathdb::opt
