// DAG-parallel intra-query execution: PhysicalPlan edge derivation, the
// DagScheduler (diamond plans, determinism, error propagation, cycle
// detection), morsel-partitioned FAO evaluation (merge equivalence,
// per-partition result-cache keys) and end-to-end parallel == sequential
// equivalence including lineage lids. The batched-execution differential
// suite at the bottom proves async cross-query LLM batching returns
// byte-identical tables, lineage lids, usage accounting and cache
// counters across a worker x batch-size x flush-deadline grid. Runs
// under the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <thread>

#include "common/thread_pool.h"
#include "llm/batch_scheduler.h"
#include "data/movie_dataset.h"
#include "engine/executor.h"
#include "engine/kathdb.h"
#include "engine/scheduler.h"
#include "fao/function.h"
#include "service/query_service.h"
#include "service/result_cache.h"

namespace kathdb::engine {
namespace {

constexpr const char* kPaperQuery =
    "Sort the given films in the table by how exciting they are, but the "
    "poster should be 'boring'";

std::unique_ptr<KathDB> MakeDb(int num_movies, KathDBOptions db_opts = {}) {
  data::DatasetOptions opts;
  opts.num_movies = num_movies;
  auto ds = data::GenerateMovieDataset(opts);
  EXPECT_TRUE(ds.ok());
  auto db = std::make_unique<KathDB>(db_opts);
  EXPECT_TRUE(data::IngestDataset(ds.value(), db.get()).ok());
  return db;
}

llm::ScriptedUser PaperUser() {
  return llm::ScriptedUser({"uncommon scenes", "prefer recent movies",
                            "OK"});
}

opt::PhysicalNode SqlNode(const std::string& name, const std::string& query,
                          std::vector<std::string> inputs,
                          const std::string& output,
                          const std::string& pattern = "many_to_many") {
  opt::PhysicalNode node;
  node.sig.name = name;
  node.sig.inputs = std::move(inputs);
  node.sig.output = output;
  node.spec.name = name;
  node.spec.template_id = "sql";
  node.spec.params.Set("query", Json::Str(query));
  node.spec.dependency_pattern = pattern;
  return node;
}

opt::PhysicalNode RecencyNode(const std::string& name,
                              const std::string& input,
                              const std::string& output,
                              const std::string& out_col) {
  opt::PhysicalNode node;
  node.sig.name = name;
  node.sig.inputs = {input};
  node.sig.output = output;
  node.spec.name = name;
  node.spec.template_id = "recency_score";
  node.spec.params.Set("output_column", Json::Str(out_col));
  node.spec.params.Set("min_year", Json::Double(1950));
  node.spec.params.Set("max_year", Json::Double(2026));
  node.spec.dependency_pattern = "one_to_one";
  return node;
}

/// select -> (recency b, recency c) -> join: the smallest plan with two
/// independent branches.
opt::PhysicalPlan DiamondPlan() {
  opt::PhysicalPlan plan;
  plan.nodes.push_back(SqlNode(
      "select_base", "SELECT mid, title, year FROM movie_table",
      {"movie_table"}, "diamond_base", "one_to_one"));
  plan.nodes.push_back(
      RecencyNode("score_left", "diamond_base", "diamond_left", "l_score"));
  plan.nodes.push_back(
      RecencyNode("score_right", "diamond_base", "diamond_right", "r_score"));
  plan.nodes.push_back(SqlNode(
      "merge_branches",
      "SELECT * FROM diamond_left l JOIN diamond_right r ON l.mid = r.mid",
      {"diamond_left", "diamond_right"}, "diamond_out"));
  plan.final_output = "diamond_out";
  plan.BuildEdges();
  return plan;
}

void ExpectSameTable(const rel::Table& a, const rel::Table& b,
                     bool compare_lids) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.schema().num_columns(), b.schema().num_columns());
  for (size_t c = 0; c < a.schema().num_columns(); ++c) {
    EXPECT_EQ(a.schema().column(c).name, b.schema().column(c).name);
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      EXPECT_EQ(a.at(r, c).ToString(), b.at(r, c).ToString())
          << "cell (" << r << "," << c << ")";
    }
    if (compare_lids) {
      EXPECT_EQ(a.row_lid(r), b.row_lid(r)) << "row " << r;
    }
  }
}

// ------------------------------------------------------- edge derivation

TEST(PlanEdgesTest, DiamondDepsDerivedFromSignatures) {
  opt::PhysicalPlan plan = DiamondPlan();
  ASSERT_EQ(plan.deps.size(), 4u);
  EXPECT_TRUE(plan.deps[0].empty());  // reads only the base relation
  EXPECT_EQ(plan.deps[1], std::vector<size_t>({0}));
  EXPECT_EQ(plan.deps[2], std::vector<size_t>({0}));
  EXPECT_EQ(plan.deps[3], std::vector<size_t>({1, 2}));
}

TEST(PlanEdgesTest, OptimizerEmitsEdgesForThePaperPlan) {
  auto db = MakeDb(10);
  auto user = PaperUser();
  auto outcome = db->Query(kPaperQuery, &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const opt::PhysicalPlan& plan = outcome->physical_plan;
  ASSERT_EQ(plan.deps.size(), plan.nodes.size());
  // The paper plan is a chain: every node after the first depends on its
  // predecessor.
  for (size_t i = 1; i < plan.nodes.size(); ++i) {
    ASSERT_FALSE(plan.deps[i].empty()) << plan.nodes[i].sig.name;
    EXPECT_EQ(plan.deps[i].front(), i - 1) << plan.nodes[i].sig.name;
  }
  // ToText renders the dependency annotations.
  EXPECT_NE(plan.ToText().find("(after "), std::string::npos);
}

// ------------------------------------------------------------- scheduler

TEST(DagSchedulerTest, ParallelDiamondMatchesSequential) {
  auto db = MakeDb(16);
  opt::PhysicalPlan plan = DiamondPlan();

  fao::ExecContext seq_ctx = db->MakeContext();
  Executor seq_exec(db->llm(), db->registry(), nullptr);
  auto seq = seq_exec.Run(plan, &seq_ctx);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  common::ThreadPool pool(4);
  ExecutorOptions par_opts;
  par_opts.max_parallel_nodes = 4;
  fao::ExecContext par_ctx = db->MakeContext();
  par_ctx.exec_pool = &pool;
  Executor par_exec(db->llm(), db->registry(), nullptr, par_opts);
  auto par = par_exec.Run(plan, &par_ctx);
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  ASSERT_NE(seq->result, nullptr);
  ASSERT_NE(par->result, nullptr);
  EXPECT_EQ(par->final_output_name, "diamond_out");
  ExpectSameTable(*seq->result, *par->result, /*compare_lids=*/false);
  // node_runs keeps plan order regardless of completion order.
  ASSERT_EQ(par->node_runs.size(), 4u);
  EXPECT_EQ(par->node_runs[0].name, "select_base");
  EXPECT_EQ(par->node_runs[1].name, "score_left");
  EXPECT_EQ(par->node_runs[2].name, "score_right");
  EXPECT_EQ(par->node_runs[3].name, "merge_branches");
  for (const auto& run : par->node_runs) EXPECT_GT(run.output_rows, 0u);
}

TEST(DagSchedulerTest, BranchesActuallyOverlapUnderAWideBudget) {
  // Two independent "probe" nodes must both be in flight at once when
  // the budget allows it.
  opt::PhysicalPlan plan;
  plan.nodes.push_back(SqlNode("left", "SELECT 1", {}, "probe_left"));
  plan.nodes.push_back(SqlNode("right", "SELECT 1", {}, "probe_right"));
  plan.final_output = "probe_right";
  plan.BuildEdges();

  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  common::ThreadPool pool(2);
  SchedulerOptions opts;
  opts.max_parallel_nodes = 2;
  opts.pool = &pool;
  Status st = DagScheduler::Run(plan, opts, [&](size_t) {
    int now = active.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    // Hold the node open long enough for the sibling to get dispatched.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    active.fetch_sub(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(peak.load(), 2);
}

TEST(DagSchedulerTest, BranchErrorPropagates) {
  auto db = MakeDb(12);
  opt::PhysicalPlan plan = DiamondPlan();
  plan.nodes[2] = SqlNode("broken_branch", "SELECT ghost FROM diamond_base",
                          {"diamond_base"}, "diamond_right");
  plan.BuildEdges();

  common::ThreadPool pool(4);
  ExecutorOptions opts;
  opts.max_parallel_nodes = 4;
  opts.max_repair_attempts = 0;
  fao::ExecContext ctx = db->MakeContext();
  ctx.exec_pool = &pool;
  Executor executor(db->llm(), db->registry(), nullptr, opts);
  auto report = executor.Run(plan, &ctx);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsSyntacticError());
}

TEST(DagSchedulerTest, CyclicDepsAreRejectedInsteadOfHanging) {
  opt::PhysicalPlan plan;
  plan.nodes.push_back(SqlNode("a", "SELECT 1", {}, "cycle_a"));
  plan.nodes.push_back(SqlNode("b", "SELECT 1", {}, "cycle_b"));
  plan.final_output = "cycle_b";
  plan.deps = {{1}, {0}};  // hand-crafted cycle

  common::ThreadPool pool(2);
  SchedulerOptions opts;
  opts.max_parallel_nodes = 2;
  opts.pool = &pool;
  Status st =
      DagScheduler::Run(plan, opts, [](size_t) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("unsatisfiable"), std::string::npos);
}

TEST(DagSchedulerTest, OutOfRangeDepsAreRejected) {
  opt::PhysicalPlan plan;
  plan.nodes.push_back(SqlNode("a", "SELECT 1", {}, "oor_a"));
  plan.nodes.push_back(SqlNode("b", "SELECT 1", {}, "oor_b"));
  plan.final_output = "oor_b";
  plan.deps = {{5}, {}};  // hand-crafted dep past the plan

  common::ThreadPool pool(2);
  SchedulerOptions opts;
  opts.max_parallel_nodes = 2;
  opts.pool = &pool;
  Status st =
      DagScheduler::Run(plan, opts, [](size_t) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("out-of-range"), std::string::npos);
}

// ----------------------------------------------------------------- morsels

TEST(MorselTest, MorselMergeEqualsSequentialEvaluation) {
  auto db = MakeDb(25);
  fao::ExecContext ctx = db->MakeContext();
  auto base = db->catalog()->Get("movie_table");
  ASSERT_TRUE(base.ok());

  opt::PhysicalNode node =
      RecencyNode("gen_recency_score", "movie_table", "scored", "r_score");

  auto fn = fao::InstantiateFunction(node.spec);
  ASSERT_TRUE(fn.ok());
  auto whole = fn.value()->Evaluate({base.value()}, &ctx);
  ASSERT_TRUE(whole.ok());

  common::ThreadPool pool(4);
  fao::MorselOptions morsels;
  morsels.morsel_size = 4;
  morsels.pool = &pool;
  auto split = fao::EvaluateWithMorsels(node.spec, {base.value()}, &ctx,
                                        morsels);
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  // Byte-identical rows in identical order, and the input lids carried
  // through the function body survive the split/merge unchanged.
  ExpectSameTable(whole.value(), split.value(), /*compare_lids=*/true);
  EXPECT_EQ(whole.value().name(), split.value().name());
}

TEST(MorselTest, PartitioningIsIndependentOfWorkerCount) {
  auto db = MakeDb(20);
  fao::ExecContext ctx = db->MakeContext();
  auto base = db->catalog()->Get("movie_table");
  ASSERT_TRUE(base.ok());
  opt::PhysicalNode node =
      RecencyNode("gen_recency_score", "movie_table", "scored", "r_score");

  fao::MorselOptions no_pool;
  no_pool.morsel_size = 3;
  auto a = fao::EvaluateWithMorsels(node.spec, {base.value()}, &ctx, no_pool);
  ASSERT_TRUE(a.ok());

  common::ThreadPool pool(4);
  fao::MorselOptions pooled;
  pooled.morsel_size = 3;
  pooled.pool = &pool;
  auto b = fao::EvaluateWithMorsels(node.spec, {base.value()}, &ctx, pooled);
  ASSERT_TRUE(b.ok());
  ExpectSameTable(a.value(), b.value(), /*compare_lids=*/true);
}

TEST(MorselTest, PerPartitionCacheKeysHitAcrossWorkerCounts) {
  auto db = MakeDb(24);
  service::ResultCache cache;
  fao::ExecContext ctx = db->MakeContext();
  ctx.result_cache = &cache;
  auto base = db->catalog()->Get("movie_table");
  ASSERT_TRUE(base.ok());
  size_t rows = base.value()->num_rows();
  opt::PhysicalNode node =
      RecencyNode("gen_recency_score", "movie_table", "scored", "r_score");

  fao::MorselOptions morsels;
  morsels.morsel_size = 5;
  size_t parts = (rows + morsels.morsel_size - 1) / morsels.morsel_size;

  // Cold run (sequential lanes): one miss per partition.
  ASSERT_TRUE(
      fao::EvaluateWithMorsels(node.spec, {base.value()}, &ctx, morsels)
          .ok());
  auto cold = cache.stats();
  EXPECT_EQ(cold.misses, static_cast<int64_t>(parts));
  EXPECT_EQ(cold.hits, 0);

  // Warm run with parallel lanes: the partition keys are a function of
  // morsel_size and content only, so every lookup hits.
  common::ThreadPool pool(4);
  morsels.pool = &pool;
  auto warm_result =
      fao::EvaluateWithMorsels(node.spec, {base.value()}, &ctx, morsels);
  ASSERT_TRUE(warm_result.ok());
  auto warm = cache.stats();
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_EQ(warm.hits, static_cast<int64_t>(parts));
}

TEST(MorselTest, SqlTemplateIsNeverSplit) {
  EXPECT_FALSE(fao::IsRowWiseTemplate("sql"));
  EXPECT_TRUE(fao::IsRowWiseTemplate("recency_score"));
  EXPECT_TRUE(fao::IsRowWiseTemplate("classify_boring_cascade"));
}

// ------------------------------------- end-to-end parallel == sequential

TEST(ParallelEquivalenceTest, PaperQueryMatchesSequentialIncludingLineage) {
  auto seq_db = MakeDb(20);
  auto seq_user = PaperUser();
  auto seq = seq_db->Query(kPaperQuery, &seq_user);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  KathDBOptions par_opts;
  par_opts.executor.max_parallel_nodes = 4;
  par_opts.executor.morsel_size = 4;
  auto par_db = MakeDb(20, par_opts);
  auto par_user = PaperUser();
  auto par = par_db->Query(kPaperQuery, &par_user);
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  // Byte-identical results; the paper plan is a chain, so even the
  // lineage lids (assigned per node, in order) must match exactly.
  ExpectSameTable(seq->result, par->result, /*compare_lids=*/true);
  EXPECT_EQ(seq_db->lineage()->num_entries(),
            par_db->lineage()->num_entries());
}

// ------------------------------------- batched == sequential differential

TEST(BatchedEquivalenceTest, PaperQueryMatchesSequentialAcrossKnobGrid) {
  // Pin the classifier implementation: "auto" profiles candidates by
  // wall-clock cost, so the chosen plan (and with it cache and meter
  // counters) would vary run to run. "pixels" is the vision-model path —
  // exactly the work batching is for.
  KathDBOptions seq_opts;
  seq_opts.optimizer.boring_impl = "pixels";
  // Reference: the classic synchronous run, no batching, no morsels.
  auto seq_db = MakeDb(20, seq_opts);
  auto seq_user = PaperUser();
  auto seq = seq_db->Query(kPaperQuery, &seq_user);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  for (int workers : {1, 4}) {
    for (int batch_size : {1, 4, 16}) {
      for (double deadline_ms : {0.0, 2.0}) {
        SCOPED_TRACE("workers=" + std::to_string(workers) +
                     " batch_size=" + std::to_string(batch_size) +
                     " deadline_ms=" + std::to_string(deadline_ms));
        KathDBOptions opts;
        opts.optimizer.boring_impl = "pixels";
        opts.executor.max_parallel_nodes = workers;
        opts.executor.morsel_size = 4;
        opts.executor.enable_llm_batching = true;
        auto db = MakeDb(20, opts);
        llm::BatchOptions bopts;
        bopts.max_batch_size = batch_size;
        bopts.flush_deadline_ms = deadline_ms;
        llm::BatchScheduler batcher(bopts);
        db->set_batch_scheduler(&batcher);

        auto user = PaperUser();
        auto out = db->Query(kPaperQuery, &user);
        ASSERT_TRUE(out.ok()) << out.status().ToString();

        // Byte-identical output *including lineage lids* — batching must
        // be pure scheduling, invisible to results and provenance.
        ExpectSameTable(seq->result, out->result, /*compare_lids=*/true);
        EXPECT_EQ(seq_db->lineage()->num_entries(),
                  db->lineage()->num_entries());
        // ... and invisible to usage accounting: exactly the same calls,
        // tokens and dollars as the synchronous run.
        EXPECT_EQ(seq_db->meter()->total_calls(), db->meter()->total_calls());
        EXPECT_EQ(seq_db->meter()->total_tokens(),
                  db->meter()->total_tokens());
        EXPECT_DOUBLE_EQ(seq_db->meter()->total_cost_usd(),
                         db->meter()->total_cost_usd());
        db->set_batch_scheduler(nullptr);
      }
    }
  }
}

TEST(BatchedEquivalenceTest, CacheCountersMatchSequentialMorselRun) {
  // Same spec, same input, same morsel geometry — so the per-partition
  // cache keys are identical — evaluated once through the synchronous
  // morsel path and once through the batched path. Cold run: one miss +
  // one insertion per partition on both sides (batching must not
  // double-insert or skip the cache). Warm run: one hit per partition on
  // both sides (cache lookup happens before submit).
  auto db = MakeDb(24);
  auto base = db->catalog()->Get("movie_table");
  ASSERT_TRUE(base.ok());
  size_t rows = base.value()->num_rows();
  opt::PhysicalNode node =
      RecencyNode("gen_recency_score", "movie_table", "scored", "r_score");
  fao::MorselOptions morsels;
  morsels.morsel_size = 5;
  size_t parts = (rows + morsels.morsel_size - 1) / morsels.morsel_size;

  service::ResultCache seq_cache;
  fao::ExecContext seq_ctx = db->MakeContext();
  seq_ctx.result_cache = &seq_cache;
  auto seq_cold =
      fao::EvaluateWithMorsels(node.spec, {base.value()}, &seq_ctx, morsels);
  ASSERT_TRUE(seq_cold.ok());
  ASSERT_TRUE(
      fao::EvaluateWithMorsels(node.spec, {base.value()}, &seq_ctx, morsels)
          .ok());

  service::ResultCache bat_cache;
  llm::BatchOptions bopts;
  bopts.max_batch_size = 3;  // forces a mid-node size flush
  bopts.flush_deadline_ms = 1.0;
  llm::BatchScheduler batcher(bopts);
  fao::ExecContext bat_ctx = db->MakeContext();
  bat_ctx.result_cache = &bat_cache;
  bat_ctx.batcher = &batcher;
  for (int i = 0; i < 2; ++i) {
    std::promise<Result<rel::Table>> landed;
    fao::EvaluateBatched(node.spec, {base.value()}, &bat_ctx, morsels,
                         [&landed](Result<rel::Table> r) {
                           landed.set_value(std::move(r));
                         });
    auto batched = landed.get_future().get();
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    ExpectSameTable(seq_cold.value(), batched.value(),
                    /*compare_lids=*/true);
  }

  auto seq_stats = seq_cache.stats();
  auto bat_stats = bat_cache.stats();
  EXPECT_EQ(bat_stats.hits, seq_stats.hits);
  EXPECT_EQ(bat_stats.misses, seq_stats.misses);
  EXPECT_EQ(bat_stats.insertions, seq_stats.insertions);
  EXPECT_EQ(bat_stats.misses, static_cast<int64_t>(parts));
  EXPECT_EQ(bat_stats.hits, static_cast<int64_t>(parts));
}

TEST(BatchedEquivalenceTest, ServiceWithBatchingMatchesServiceWithout) {
  // The full service stack (admission, sessions, shared cache) with
  // batching on vs off: same tables out, same usage totals.
  auto run = [&](bool batching, rel::Table* table_out, int64_t* calls_out) {
    KathDBOptions db_opts;
    db_opts.optimizer.boring_impl = "pixels";
    auto db = MakeDb(16, db_opts);
    service::ServiceOptions opts;
    opts.workers = 4;
    opts.intra_query_parallelism = 2;
    opts.intra_query_morsel_size = 4;
    opts.adaptive_intra_query = false;
    opts.enable_result_cache = false;  // isolate the batching effect
    opts.enable_llm_batching = batching;
    opts.llm_batch_size = 4;
    opts.llm_flush_deadline_ms = 1.0;
    service::QueryService service(db.get(), opts);
    auto sid = service.OpenSession(
        {"uncommon scenes", "prefer recent movies", "OK"});
    std::vector<service::OutcomeFuture> futs;
    for (int i = 0; i < 6; ++i) {
      auto f = service.Submit(sid, kPaperQuery);
      ASSERT_TRUE(f.ok()) << f.status().ToString();
      futs.push_back(f.value());
    }
    service.Drain();
    std::vector<rel::Table> tables;
    for (auto& f : futs) {
      auto outcome = f.get();
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      tables.push_back(outcome.value().result);
    }
    for (size_t i = 1; i < tables.size(); ++i) {
      ExpectSameTable(tables[0], tables[i], /*compare_lids=*/false);
    }
    *table_out = tables[0];
    *calls_out = db->meter()->total_calls();
  };

  rel::Table sync_table, batch_table;
  int64_t sync_calls = 0, batch_calls = 0;
  run(false, &sync_table, &sync_calls);
  run(true, &batch_table, &batch_calls);
  ExpectSameTable(sync_table, batch_table, /*compare_lids=*/false);
  // Batching coalesces identical in-flight work, so it may *save* calls,
  // but it must never charge more than the synchronous service did.
  EXPECT_LE(batch_calls, sync_calls);
  EXPECT_GT(batch_calls, 0);
}

TEST(ParallelEquivalenceTest, ServiceBudgetRunsQueriesCorrectly) {
  auto db = MakeDb(16);
  service::ServiceOptions opts;
  opts.workers = 2;
  opts.intra_query_parallelism = 4;
  opts.intra_query_morsel_size = 4;
  opts.adaptive_intra_query = false;
  service::QueryService service(db.get(), opts);
  auto sid = service.OpenSession(
      {"uncommon scenes", "prefer recent movies", "OK"});
  auto a = service.Query(sid, kPaperQuery);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = service.Query(sid, kPaperQuery);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectSameTable(a->result, b->result, /*compare_lids=*/false);
  EXPECT_GT(a->result.num_rows(), 0u);
}

}  // namespace
}  // namespace kathdb::engine
