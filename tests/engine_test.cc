// Unit tests for src/engine: executor lineage modes, agentic monitor
// (syntactic self-repair, semantic anomalies), explainer.

#include <gtest/gtest.h>

#include "data/movie_dataset.h"
#include "engine/executor.h"
#include "engine/explainer.h"
#include "engine/kathdb.h"

namespace kathdb::engine {
namespace {

constexpr const char* kPaperQuery =
    "Sort the given films in the table by how exciting they are, but the "
    "poster should be 'boring'";

std::unique_ptr<KathDB> MakeDb(data::DatasetOptions opts,
                               KathDBOptions db_opts = {},
                               data::MovieDataset* out_ds = nullptr) {
  auto ds = data::GenerateMovieDataset(opts);
  EXPECT_TRUE(ds.ok());
  auto db = std::make_unique<KathDB>(db_opts);
  EXPECT_TRUE(data::IngestDataset(ds.value(), db.get()).ok());
  if (out_ds != nullptr) *out_ds = std::move(ds).value();
  return db;
}

Result<QueryOutcome> RunPaper(KathDB* db, llm::ScriptedUser* user) {
  return db->Query(kPaperQuery, user);
}

llm::ScriptedUser PaperUser() {
  return llm::ScriptedUser({"uncommon scenes", "prefer recent movies",
                            "OK"});
}

// ----------------------------------------------------- lineage modes (E6)

TEST(ExecutorLineageTest, RowModeAssignsFreshLidsToResult) {
  data::DatasetOptions opts;
  opts.num_movies = 12;
  auto db = MakeDb(opts);
  auto user = PaperUser();
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_GT(outcome->result.num_rows(), 0u);
  EXPECT_NE(outcome->result.row_lid(0), 0);
  EXPECT_GT(db->lineage()->num_entries(), 50u);
}

TEST(ExecutorLineageTest, OffModeRecordsNothing) {
  data::DatasetOptions opts;
  opts.num_movies = 12;
  KathDBOptions db_opts;
  db_opts.lineage_mode = lineage::TrackingMode::kOff;
  auto db = MakeDb(opts, db_opts);
  auto user = PaperUser();
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(db->lineage()->num_entries(), 0u);
  EXPECT_EQ(outcome->result.row_lid(0), 0);
}

TEST(ExecutorLineageTest, TableModeRecordsOnlyTableEdges) {
  data::DatasetOptions opts;
  opts.num_movies = 12;
  KathDBOptions db_opts;
  db_opts.lineage_mode = lineage::TrackingMode::kTable;
  auto db = MakeDb(opts, db_opts);
  auto user = PaperUser();
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  for (const auto& e : db->lineage()->entries()) {
    EXPECT_EQ(e.data_type, lineage::LineageDataType::kTable);
  }
}

TEST(ExecutorLineageTest, SampledModeRecordsFewerRowEdges) {
  data::DatasetOptions opts;
  opts.num_movies = 24;
  KathDBOptions row_opts;
  auto row_db = MakeDb(opts, row_opts);
  auto u1 = PaperUser();
  ASSERT_TRUE(RunPaper(row_db.get(), &u1).ok());

  KathDBOptions sampled_opts;
  sampled_opts.lineage_mode = lineage::TrackingMode::kSampled;
  sampled_opts.lineage_sample_rate = 0.1;
  auto sampled_db = MakeDb(opts, sampled_opts);
  auto u2 = PaperUser();
  ASSERT_TRUE(RunPaper(sampled_db.get(), &u2).ok());

  EXPECT_LT(sampled_db->lineage()->num_entries(),
            row_db->lineage()->num_entries());
}

// ------------------------------------------------ syntactic repair (E12)

TEST(MonitorTest, HeicPosterIsRepairedOnTheFly) {
  data::DatasetOptions opts;
  opts.num_movies = 14;
  opts.heic_fraction = 0.5;
  KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = "pixels";  // force the pixel path
  data::MovieDataset ds;
  auto db = MakeDb(opts, db_opts, &ds);
  auto user = PaperUser();
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->report.total_repairs, 1);
  // The repaired function has a bumped version in the registry.
  auto versions = db->registry()->VersionsOf("classify_boring");
  ASSERT_GE(versions.size(), 2u);
  EXPECT_NE(versions.back().source_text.find("rewriter fix"),
            std::string::npos);
  // The loader now supports HEIC.
  EXPECT_TRUE(db->image_loader()->heic_supported());
  // The user was notified about the repair.
  bool notified = false;
  for (const auto& e : user.history()) {
    if (e.question.find("Repaired") != std::string::npos) notified = true;
  }
  EXPECT_TRUE(notified);
}

TEST(MonitorTest, UnrepairableErrorPropagates) {
  // A broken SQL body (unknown table) is a syntactic error the monitor
  // has no recipe for: execution fails with the original diagnosis.
  data::DatasetOptions opts;
  opts.num_movies = 8;
  auto db = MakeDb(opts);
  fao::ExecContext ctx = db->MakeContext();
  opt::PhysicalPlan plan;
  opt::PhysicalNode node;
  node.sig.name = "broken";
  node.sig.inputs = {"movie_table"};
  node.sig.output = "out";
  node.spec.name = "broken";
  node.spec.template_id = "sql";
  node.spec.params.Set("query", Json::Str("SELECT ghost FROM movie_table"));
  plan.nodes.push_back(node);
  plan.final_output = "out";
  llm::ScriptedUser user;
  Executor executor(db->llm(), db->registry(), &user);
  auto report = executor.Run(plan, &ctx);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsSyntacticError());
}

TEST(MonitorTest, RepairExhaustionSurfacesOriginalError) {
  // With the repair budget exhausted (0 attempts) the monitor never gets
  // to wrap or replace the diagnosis: the original decoder error must
  // surface to the caller verbatim.
  data::DatasetOptions opts;
  opts.num_movies = 10;
  opts.heic_fraction = 1.0;
  KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = "pixels";
  db_opts.executor.max_repair_attempts = 0;
  auto db = MakeDb(opts, db_opts);
  auto user = PaperUser();
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsSyntacticError());
  std::string msg = outcome.status().ToString();
  EXPECT_NE(msg.find("heic"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("monitor cannot repair"), std::string::npos) << msg;
}

TEST(MonitorTest, RepairedVersionIsReflectedInNodeRun) {
  data::DatasetOptions opts;
  opts.num_movies = 14;
  opts.heic_fraction = 0.5;
  KathDBOptions db_opts;
  db_opts.optimizer.boring_impl = "pixels";
  auto db = MakeDb(opts, db_opts);
  auto user = PaperUser();
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const NodeRun* classify = nullptr;
  for (const auto& run : outcome->report.node_runs) {
    if (run.name == "classify_boring") classify = &run;
  }
  ASSERT_NE(classify, nullptr);
  ASSERT_GE(classify->repair_attempts, 1);
  // The run records the *patched* version the node finally executed
  // with, i.e. the latest registry version, not the original.
  auto versions = db->registry()->VersionsOf("classify_boring");
  ASSERT_GE(versions.size(), 2u);
  EXPECT_EQ(classify->ver_id, versions.back().ver_id);
  EXPECT_GT(classify->ver_id, versions.front().ver_id);
}

// ------------------------------------------------ semantic anomaly (E11)

TEST(MonitorTest, DuplicatePosterAnomalyEscalatedAndFixed) {
  data::DatasetOptions opts;
  opts.num_movies = 20;
  opts.duplicate_poster_fraction = 0.5;
  auto db = MakeDb(opts);
  llm::ScriptedUser user({"uncommon scenes", "prefer recent movies", "OK",
                          "adjust"});
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->report.total_anomalies, 1);
  // After the fix each vid appears at most once in the join output.
  auto joined = db->catalog()->Get("films_with_image_scene");
  ASSERT_TRUE(joined.ok());
  auto vidx = joined.value()->schema().IndexOf("vid");
  ASSERT_TRUE(vidx.has_value());
  std::set<int64_t> seen;
  for (size_t r = 0; r < joined.value()->num_rows(); ++r) {
    EXPECT_TRUE(seen.insert(joined.value()->at(r, *vidx).AsInt()).second);
  }
}

TEST(MonitorTest, UserCanAcceptAnomaly) {
  data::DatasetOptions opts;
  opts.num_movies = 20;
  opts.duplicate_poster_fraction = 0.5;
  auto db = MakeDb(opts);
  llm::ScriptedUser user({"uncommon scenes", "prefer recent movies", "OK",
                          "accept", "accept", "accept"});
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->report.total_anomalies, 1);
  // Accepted: duplicates remain in the join output.
  auto joined = db->catalog()->Get("films_with_image_scene");
  ASSERT_TRUE(joined.ok());
  auto vidx = joined.value()->schema().IndexOf("vid");
  std::set<int64_t> seen;
  bool duplicate_survived = false;
  for (size_t r = 0; r < joined.value()->num_rows(); ++r) {
    if (!seen.insert(joined.value()->at(r, *vidx).AsInt()).second) {
      duplicate_survived = true;
    }
  }
  EXPECT_TRUE(duplicate_survived);
}

TEST(MonitorTest, ZeroSampleRateDisablesDetection) {
  data::DatasetOptions opts;
  opts.num_movies = 20;
  opts.duplicate_poster_fraction = 0.5;
  KathDBOptions db_opts;
  db_opts.executor.monitor_sample_rate = 0.0;
  auto db = MakeDb(opts, db_opts);
  auto user = PaperUser();
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->report.total_anomalies, 0);
}

// ------------------------------------------------------------- explainer

TEST(ExplainerTest, CoarseExplanationListsAllSteps) {
  data::DatasetOptions opts;
  opts.num_movies = 10;
  auto db = MakeDb(opts);
  auto user = PaperUser();
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok());
  auto text = db->ExplainPipeline();
  ASSERT_TRUE(text.ok());
  for (const auto& node : outcome->physical_plan.nodes) {
    EXPECT_NE(text.value().find(node.sig.name), std::string::npos)
        << node.sig.name;
  }
}

TEST(ExplainerTest, FineExplanationTracesToSources) {
  data::DatasetOptions opts;
  opts.num_movies = 10;
  auto db = MakeDb(opts);
  auto user = PaperUser();
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok());
  int64_t lid = outcome->result.row_lid(0);
  auto text = db->ExplainTuple(lid);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("external source"), std::string::npos);
  EXPECT_NE(text.value().find("Guilty by Suspicion"), std::string::npos);
  EXPECT_NE(text.value().find("weighted sum"), std::string::npos);
}

TEST(ExplainerTest, ExplainTupleWithoutLineageFails) {
  data::DatasetOptions opts;
  opts.num_movies = 10;
  auto db = MakeDb(opts);
  auto user = PaperUser();
  ASSERT_TRUE(RunPaper(db.get(), &user).ok());
  EXPECT_FALSE(db->ExplainTuple(0).ok());
}

TEST(ExplainerTest, NlDispatchRoutesQuestions) {
  data::DatasetOptions opts;
  opts.num_movies = 10;
  auto db = MakeDb(opts);
  auto user = PaperUser();
  auto outcome = RunPaper(db.get(), &user);
  ASSERT_TRUE(outcome.ok());
  auto coarse = db->AskExplanation("How does the pipeline work?");
  ASSERT_TRUE(coarse.ok());
  EXPECT_NE(coarse.value().find("Pipeline explanation"), std::string::npos);
  int64_t lid = outcome->result.row_lid(0);
  auto fine = db->AskExplanation("explain tuple " + std::to_string(lid));
  ASSERT_TRUE(fine.ok());
  EXPECT_NE(fine.value().find("derivation"), std::string::npos);
  EXPECT_FALSE(db->AskExplanation("sing me a song").ok());
}

TEST(ExplainerTest, NoQueryYetIsNotFound) {
  KathDB db;
  EXPECT_FALSE(db.ExplainPipeline().ok());
  EXPECT_FALSE(db.ExplainTuple(1).ok());
}

// -------------------------------------------------------- report rendering

TEST(ReportTest, TextMentionsRepairsAndRows) {
  ExecutionReport report;
  NodeRun run;
  run.name = "classify_boring";
  run.template_id = "classify_boring_pixels";
  run.ver_id = 2;
  run.output_rows = 14;
  run.repair_attempts = 1;
  report.node_runs.push_back(run);
  report.total_repairs = 1;
  std::string text = report.ToText();
  EXPECT_NE(text.find("classify_boring"), std::string::npos);
  EXPECT_NE(text.find("(repaired)"), std::string::npos);
  EXPECT_NE(text.find("rows=14"), std::string::npos);
}

}  // namespace
}  // namespace kathdb::engine
