// End-to-end tests for the concurrent multi-session QueryService: session
// lifecycle, concurrent correctness against the single-threaded facade,
// cross-query result caching, backpressure, and aggregated stats.

#include "service/query_service.h"

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <thread>
#include <vector>

#include "data/movie_dataset.h"
#include "engine/kathdb.h"
#include "llm/batch_scheduler.h"

namespace kathdb::service {
namespace {

constexpr const char* kPaperQuery =
    "Sort the given films in the table by how exciting they are, but the "
    "poster should be 'boring'";

const std::vector<std::string> kPaperReplies = {
    "The movie plot contains scenes that are uncommon in real life",
    "I prefer more recent movies when scoring", "OK"};

class ServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::DatasetOptions opts;
    opts.num_movies = 12;
    auto ds = data::GenerateMovieDataset(opts);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::move(ds).value();
    db_ = std::make_unique<engine::KathDB>();
    ASSERT_TRUE(data::IngestDataset(dataset_, db_.get()).ok());
  }

  data::MovieDataset dataset_;
  std::unique_ptr<engine::KathDB> db_;
};

TEST_F(ServiceFixture, SessionLifecycle) {
  QueryService service(db_.get());
  SessionId a = service.OpenSession();
  SessionId b = service.OpenSession(kPaperReplies);
  EXPECT_NE(a, b);
  EXPECT_EQ(service.num_sessions(), 2u);
  ASSERT_TRUE(service.GetSession(b).ok());
  EXPECT_EQ(service.GetSession(b).value()->default_replies().size(), 3u);
  EXPECT_TRUE(service.CloseSession(a).ok());
  EXPECT_FALSE(service.CloseSession(a).ok());  // already closed
  EXPECT_EQ(service.num_sessions(), 1u);
  EXPECT_FALSE(service.GetSession(a).ok());
}

TEST_F(ServiceFixture, SubmitToUnknownSessionFails) {
  QueryService service(db_.get());
  auto fut = service.Submit(999, kPaperQuery);
  ASSERT_FALSE(fut.ok());
  EXPECT_TRUE(fut.status().IsNotFound());
}

TEST_F(ServiceFixture, ServedOutcomeMatchesFacade) {
  // Single-threaded facade reference on an identically generated corpus.
  data::DatasetOptions opts;
  opts.num_movies = 12;
  auto ds = data::GenerateMovieDataset(opts);
  ASSERT_TRUE(ds.ok());
  engine::KathDB reference;
  ASSERT_TRUE(data::IngestDataset(ds.value(), &reference).ok());
  llm::ScriptedUser ref_user(kPaperReplies);
  auto expected = reference.Query(kPaperQuery, &ref_user);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  ServiceOptions sopts;
  sopts.workers = 4;
  QueryService service(db_.get(), sopts);
  SessionId sid = service.OpenSession(kPaperReplies);
  auto outcome = service.Query(sid, kPaperQuery);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const rel::Table& got = outcome.value().result;
  const rel::Table& want = expected.value().result;
  ASSERT_EQ(got.num_rows(), want.num_rows());
  ASSERT_EQ(got.schema().ToString(), want.schema().ToString());
  for (size_t r = 0; r < got.num_rows(); ++r) {
    for (size_t c = 0; c < got.schema().columns().size(); ++c) {
      EXPECT_EQ(got.at(r, c).ToString(), want.at(r, c).ToString())
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST_F(ServiceFixture, ConcurrentSessionsAllSucceedAndAgree) {
  ServiceOptions sopts;
  sopts.workers = 4;
  QueryService service(db_.get(), sopts);

  constexpr int kSessions = 8;
  constexpr int kQueriesPerSession = 3;
  std::vector<SessionId> sessions;
  std::vector<OutcomeFuture> futures;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(service.OpenSession(kPaperReplies));
  }
  for (int q = 0; q < kQueriesPerSession; ++q) {
    for (SessionId sid : sessions) {
      auto fut = service.Submit(sid, kPaperQuery);
      ASSERT_TRUE(fut.ok()) << fut.status().ToString();
      futures.push_back(std::move(fut).value());
    }
  }
  std::set<std::string> distinct_results;
  for (auto& fut : futures) {
    auto outcome = fut.get();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    distinct_results.insert(outcome.value().result.ToText(100));
  }
  // Identical query + corpus + replies => identical result everywhere.
  EXPECT_EQ(distinct_results.size(), 1u);

  ServiceStats st = service.stats();
  EXPECT_EQ(st.submitted, kSessions * kQueriesPerSession);
  EXPECT_EQ(st.completed, kSessions * kQueriesPerSession);
  EXPECT_EQ(st.failed, 0);
  // The repeated workload must actually hit the shared cache.
  EXPECT_GT(st.cache.hits, 0) << st.ToText();
  // Per-session state was maintained.
  for (SessionId sid : sessions) {
    auto session = service.GetSession(sid);
    ASSERT_TRUE(session.ok());
    EXPECT_EQ(session.value()->queries_ok(), kQueriesPerSession);
    EXPECT_TRUE(session.value()->last_outcome().has_value());
    EXPECT_GT(session.value()->questions_answered(), 0);
  }
}

TEST_F(ServiceFixture, CacheMakesRepeatQueriesCheaper) {
  QueryService service(db_.get());
  SessionId sid = service.OpenSession(kPaperReplies);
  ASSERT_TRUE(service.Query(sid, kPaperQuery).ok());
  int64_t tokens_after_first = db_->meter()->total_tokens();
  ASSERT_TRUE(service.Query(sid, kPaperQuery).ok());
  int64_t tokens_after_second = db_->meter()->total_tokens();
  // The repeat run answers mostly from the cache: it must consume well
  // under half of the first run's token budget.
  EXPECT_LT(tokens_after_second - tokens_after_first,
            tokens_after_first / 2)
      << "first=" << tokens_after_first
      << " second_delta=" << (tokens_after_second - tokens_after_first);
  EXPECT_GT(service.stats().cache.hits, 0);
}

TEST_F(ServiceFixture, DisabledCacheStillServes) {
  ServiceOptions sopts;
  sopts.enable_result_cache = false;
  QueryService service(db_.get(), sopts);
  EXPECT_EQ(service.cache(), nullptr);
  SessionId sid = service.OpenSession(kPaperReplies);
  ASSERT_TRUE(service.Query(sid, kPaperQuery).ok());
  EXPECT_EQ(service.stats().cache.hits, 0);
}

TEST_F(ServiceFixture, BackpressureRejectsWithUnavailable) {
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.max_queue = 1;
  QueryService service(db_.get(), sopts);
  SessionId sid = service.OpenSession(kPaperReplies);
  // Flood: with one worker and a one-slot queue some submissions must be
  // shed, and every shed call reports kUnavailable.
  int rejected = 0;
  std::vector<OutcomeFuture> admitted;
  for (int i = 0; i < 24; ++i) {
    auto fut = service.Submit(sid, kPaperQuery);
    if (fut.ok()) {
      admitted.push_back(std::move(fut).value());
    } else {
      EXPECT_TRUE(fut.status().IsUnavailable()) << fut.status().ToString();
      ++rejected;
    }
  }
  for (auto& fut : admitted) EXPECT_TRUE(fut.get().ok());
  EXPECT_GT(rejected, 0);
  ServiceStats st = service.stats();
  EXPECT_EQ(st.rejected, rejected);
  EXPECT_EQ(st.submitted, static_cast<int64_t>(admitted.size()));
  // Every shed submission is tallied under its status-code name; the
  // admitted ones all completed OK.
  EXPECT_EQ(st.responses["Unavailable"], rejected);
  EXPECT_EQ(st.responses["OK"], static_cast<int64_t>(admitted.size()));
}

TEST_F(ServiceFixture, PerStatusResponseCountersTrackOutcomes) {
  QueryService service(db_.get());
  SessionId sid = service.OpenSession(kPaperReplies);
  ASSERT_TRUE(service.Query(sid, kPaperQuery).ok());
  ASSERT_TRUE(service.Query(sid, kPaperQuery).ok());
  EXPECT_FALSE(service.Query(sid, "").ok());  // empty NL fails validation
  ServiceStats st = service.stats();
  EXPECT_EQ(st.responses["OK"], st.completed);
  EXPECT_EQ(st.completed, 2);
  EXPECT_EQ(st.failed, 1);
  int64_t non_ok = 0;
  for (const auto& [name, count] : st.responses) {
    EXPECT_GT(count, 0) << "zero-count code " << name << " not omitted";
    if (name != "OK") non_ok += count;
  }
  EXPECT_EQ(non_ok, st.failed + st.rejected);
  // The rendered stats include the per-status breakdown.
  EXPECT_NE(st.ToText().find("responses"), std::string::npos);
}

TEST_F(ServiceFixture, LoadGaugesReadZeroAtRest) {
  QueryService service(db_.get());
  SessionId sid = service.OpenSession(kPaperReplies);
  ASSERT_TRUE(service.Query(sid, kPaperQuery).ok());
  service.Drain();
  ServiceStats st = service.stats();
  EXPECT_EQ(st.queue_depth, 0);
  EXPECT_EQ(st.in_flight, 0);
}

TEST_F(ServiceFixture, PerQueryRepliesOverrideSessionScript) {
  QueryService service(db_.get());
  SessionId sid = service.OpenSession();  // no default replies
  // ScriptedUser answers "OK" when its queue is empty, so even the empty
  // script completes; explicit replies steer the clarification.
  auto outcome = service.Query(sid, kPaperQuery, kPaperReplies);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome.value().result.num_rows(), 0u);
}

TEST_F(ServiceFixture, StatsAggregateUsageAcrossSessions) {
  QueryService service(db_.get());
  SessionId a = service.OpenSession(kPaperReplies);
  SessionId b = service.OpenSession(kPaperReplies);
  ASSERT_TRUE(service.Query(a, kPaperQuery).ok());
  ASSERT_TRUE(service.Query(b, kPaperQuery).ok());
  ServiceStats st = service.stats();
  EXPECT_EQ(st.completed, 2);
  EXPECT_GT(st.llm_calls, 0);
  EXPECT_GT(st.llm_tokens, 0);
  EXPECT_GT(st.llm_cost_usd, 0.0);
  EXPECT_EQ(st.sessions_active, 2);
  EXPECT_FALSE(st.ToText().empty());
}

TEST_F(ServiceFixture, DetachedQueriesKeepFacadeLastOutcomeClean) {
  QueryService service(db_.get());
  SessionId sid = service.OpenSession(kPaperReplies);
  ASSERT_TRUE(service.Query(sid, kPaperQuery).ok());
  // QueryDetached must not publish into the facade's last-outcome slot;
  // explanation entry points keep refusing until a facade query runs.
  EXPECT_FALSE(db_->last_outcome().has_value());
  EXPECT_FALSE(db_->ExplainPipeline().ok());
}

// --------------------------- batching fault injection and load shedding

TEST_F(ServiceFixture, FailedBatchPropagatesToEveryWaiterWithoutDoubleCharge) {
  ServiceOptions opts;
  opts.workers = 2;
  // Generous deadline: all injected submissions land in one pending
  // batch, so exactly one (failing) generation serves every waiter.
  opts.llm_flush_deadline_ms = 50.0;
  QueryService service(db_.get(), opts);
  ASSERT_NE(service.batcher(), nullptr);
  int64_t calls_before = db_->meter()->total_calls();

  std::vector<std::future<Result<llm::BatchResult>>> futs;
  for (int i = 0; i < 4; ++i) {
    futs.push_back(service.batcher()->SubmitFuture(
        /*fingerprint=*/0xFA11EDu,
        []() -> Result<llm::BatchResult> {
          return Status::IOError("injected model failure");
        },
        /*latency_ms=*/0.0));
  }
  for (auto& f : futs) {
    Result<llm::BatchResult> r = f.get();  // must complete, never hang
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("injected model failure"),
              std::string::npos);
  }
  llm::BatchStats bst = service.batcher()->stats();
  EXPECT_EQ(bst.failed, 1);     // one generation attempt...
  EXPECT_EQ(bst.coalesced, 3);  // ... shared by all four waiters
  // A failed generation is never metered — no charge, no double-charge.
  EXPECT_EQ(db_->meter()->total_calls(), calls_before);

  // The scheduler (and the service) keep serving after a failed batch.
  SessionId sid = service.OpenSession(kPaperReplies);
  auto outcome = service.Query(sid, kPaperQuery);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(service.stats().batching.submitted, bst.submitted);
}

TEST_F(ServiceFixture, SheddingWithBatchesInFlightNeitherHangsNorLeaks) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.max_queue = 1;
  opts.reply_latency_ms = 40.0;  // holds the single worker busy
  opts.llm_flush_deadline_ms = 10.0;
  QueryService service(db_.get(), opts);
  SessionId sid = service.OpenSession(kPaperReplies);

  // A batch item is pending (deadline not yet reached) while admission
  // control starts shedding.
  auto inflight = service.batcher()->SubmitFuture(
      /*fingerprint=*/0xBEEFu,
      []() -> Result<llm::BatchResult> {
        llm::BatchResult r;
        r.text = "late but fine";
        return r;
      },
      /*latency_ms=*/0.0);

  std::vector<OutcomeFuture> admitted;
  bool rejected = false;
  for (int i = 0; i < 12 && !rejected; ++i) {
    auto fut = service.Submit(sid, kPaperQuery);
    if (fut.ok()) {
      admitted.push_back(fut.value());
    } else {
      EXPECT_TRUE(fut.status().IsUnavailable());
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected) << "queue bound never triggered load shedding";

  // Shedding must not strand in-flight batch work: the pending item
  // still flushes, and every *admitted* query runs to completion.
  Result<llm::BatchResult> r = inflight.get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().text, "late but fine");
  service.Drain();
  for (auto& f : admitted) {
    auto outcome = f.get();
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  ServiceStats st = service.stats();
  EXPECT_GT(st.rejected, 0);
  EXPECT_EQ(st.completed, static_cast<int64_t>(admitted.size()));
}

TEST_F(ServiceFixture, ConstAccessorsServeReadOnlyCallers) {
  const engine::KathDB& ro = *db_;
  EXPECT_NE(ro.catalog(), nullptr);
  EXPECT_NE(ro.lineage(), nullptr);
  EXPECT_NE(ro.registry(), nullptr);
  EXPECT_NE(ro.meter(), nullptr);
  EXPECT_NE(ro.images(), nullptr);
  EXPECT_NE(ro.image_loader(), nullptr);
  EXPECT_NE(ro.vlm(), nullptr);
  EXPECT_NE(ro.ner(), nullptr);
  EXPECT_NE(ro.llm(), nullptr);
  EXPECT_EQ(ro.meter()->total_calls(), db_->meter()->total_calls());
}

}  // namespace
}  // namespace kathdb::service
