// Unit tests for src/multimodal: media, scene graphs, text graphs.

#include <gtest/gtest.h>

#include "multimodal/media.h"
#include "multimodal/scene_graph.h"
#include "multimodal/text_graph.h"

namespace kathdb::mm {
namespace {

SyntheticImage ActionPoster() {
  SyntheticImage img;
  img.uri = "file://posters/action.simg";
  img.color_variance = 0.2;
  img.objects.push_back({"person", 0.1, 0.1, 0.5, 0.9,
                         {{"color", "red"}, {"pose", "running"}}});
  img.objects.push_back({"gun", 0.4, 0.4, 0.5, 0.5, {}});
  img.objects.push_back({"motorcycle", 0.5, 0.5, 0.9, 0.9, {}});
  img.relationships.push_back({0, "holding", 1});
  img.relationships.push_back({0, "riding", 2});
  return img;
}

// ------------------------------------------------------------------ media

TEST(MediaTest, ImageJsonRoundTrip) {
  SyntheticImage img = ActionPoster();
  auto parsed = SyntheticImage::FromJson(img.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const SyntheticImage& p = parsed.value();
  EXPECT_EQ(p.uri, img.uri);
  ASSERT_EQ(p.objects.size(), 3u);
  EXPECT_EQ(p.objects[0].cls, "person");
  ASSERT_EQ(p.objects[0].attrs.size(), 2u);
  EXPECT_EQ(p.objects[0].attrs[1].second, "running");
  ASSERT_EQ(p.relationships.size(), 2u);
  EXPECT_EQ(p.relationships[1].predicate, "riding");
  EXPECT_DOUBLE_EQ(p.color_variance, 0.2);
}

TEST(MediaTest, SaveAndLoadFile) {
  SyntheticImage img = ActionPoster();
  std::string path = ::testing::TempDir() + "/poster.simg";
  ASSERT_TRUE(SaveImage(img, path).ok());
  ImageLoader loader;
  auto loaded = loader.Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().objects.size(), 3u);
}

TEST(MediaTest, LoadMissingFileIsIOError) {
  ImageLoader loader;
  auto r = loader.Load("/nonexistent/nope.simg");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(MediaTest, HeicRefusedUntilConversionEnabled) {
  SyntheticImage img = ActionPoster();
  img.format = "heic";
  ImageLoader loader;
  auto r1 = loader.Decode(img);
  ASSERT_FALSE(r1.ok());
  EXPECT_TRUE(r1.status().IsSyntacticError());
  EXPECT_NE(r1.status().message().find("heic"), std::string::npos);

  loader.EnableHeicConversion();
  auto r2 = loader.Decode(img);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().format, "simg");  // converted
}

TEST(MediaTest, UnknownFormatRejected) {
  SyntheticImage img = ActionPoster();
  img.format = "webp";
  ImageLoader loader;
  EXPECT_FALSE(loader.Decode(img).ok());
}

// ------------------------------------------------------------ scene graph

TEST(SceneGraphTest, ViewsMatchTable1Schema) {
  rel::Catalog catalog;
  ASSERT_TRUE(EnsureSceneGraphViews(&catalog).ok());
  auto objects = catalog.Get("scene_objects");
  ASSERT_TRUE(objects.ok());
  EXPECT_EQ(objects.value()->schema().ToString(),
            "vid:INT, fid:INT, oid:INT, lid:INT, cid:STRING, x_1:DOUBLE, "
            "y_1:DOUBLE, x_2:DOUBLE, y_2:DOUBLE");
  auto rels = catalog.Get("scene_relationships");
  ASSERT_TRUE(rels.ok());
  EXPECT_EQ(rels.value()->schema().ToString(),
            "vid:INT, fid:INT, rid:INT, lid:INT, oid_i:INT, pid:STRING, "
            "oid_j:INT");
  auto attrs = catalog.Get("scene_attributes");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs.value()->schema().ToString(),
            "vid:INT, fid:INT, oid:INT, lid:INT, k:STRING, v:STRING");
  auto frames = catalog.Get("scene_frames");
  ASSERT_TRUE(frames.ok());
  EXPECT_EQ(frames.value()->schema().ToString(),
            "vid:INT, fid:INT, lid:INT, pixels:STRING");
}

TEST(SceneGraphTest, NoiselessVlmDetectsEverything) {
  rel::Catalog catalog;
  lineage::LineageStore lineage;
  SimulatedVlm vlm;  // zero noise
  ASSERT_TRUE(vlm.PopulateFromImage(7, ActionPoster(), &catalog, &lineage)
                  .ok());
  auto objects = catalog.Get("scene_objects").value();
  EXPECT_EQ(objects->num_rows(), 3u);
  auto rels = catalog.Get("scene_relationships").value();
  EXPECT_EQ(rels->num_rows(), 2u);
  auto attrs = catalog.Get("scene_attributes").value();
  EXPECT_EQ(attrs->num_rows(), 2u);
  // Every derived row carries a lineage id tracing to the image uri.
  int64_t lid = objects->row_lid(0);
  ASSERT_NE(lid, 0);
  auto chain = lineage.TraceToSources(lid);
  bool reaches_image = false;
  for (const auto& e : chain) {
    if (e.src_uri == "file://posters/action.simg") reaches_image = true;
  }
  EXPECT_TRUE(reaches_image);
  EXPECT_GT(vlm.tokens_used(), 0);
}

TEST(SceneGraphTest, DetectionDropNoiseLosesObjects) {
  rel::Catalog catalog;
  lineage::LineageStore lineage;
  VlmConfig config;
  config.detection_drop_prob = 0.95;
  config.seed = 3;
  SimulatedVlm vlm(config);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(vlm.PopulateFromImage(i, ActionPoster(), &catalog, &lineage)
                    .ok());
  }
  auto objects = catalog.Get("scene_objects").value();
  // 90 latent objects, 95% dropped: far fewer survive.
  EXPECT_LT(objects->num_rows(), 30u);
  EXPECT_GT(objects->num_rows(), 0u);
}

TEST(SceneGraphTest, VideoFramesGetDistinctFids) {
  rel::Catalog catalog;
  lineage::LineageStore lineage;
  SimulatedVlm vlm;
  SyntheticVideo video;
  video.frames.push_back(ActionPoster());
  video.frames.push_back(ActionPoster());
  video.frames.push_back(ActionPoster());
  ASSERT_TRUE(vlm.PopulateFromVideo(1, video, &catalog, &lineage).ok());
  auto frames = catalog.Get("scene_frames").value();
  ASSERT_EQ(frames->num_rows(), 3u);
  EXPECT_EQ(frames->at(0, 1).AsInt(), 0);
  EXPECT_EQ(frames->at(2, 1).AsInt(), 2);
}

TEST(SceneGraphTest, FrameStatsReflectContent) {
  rel::Catalog catalog;
  lineage::LineageStore lineage;
  SimulatedVlm vlm;
  ASSERT_TRUE(vlm.PopulateFromImage(1, ActionPoster(), &catalog, &lineage)
                  .ok());
  auto stats = ComputeFrameStats(1, 0, catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_objects, 3);
  EXPECT_EQ(stats->num_relationships, 2);
  EXPECT_EQ(stats->num_action_objects, 2);  // gun + motorcycle
  EXPECT_NEAR(stats->color_variance, 0.2, 1e-3);
}

// ------------------------------------------------------------- text graph

TEST(TextGraphTest, ViewsMatchTable2Schema) {
  rel::Catalog catalog;
  ASSERT_TRUE(EnsureTextGraphViews(&catalog).ok());
  EXPECT_EQ(catalog.Get("text_entities").value()->schema().ToString(),
            "did:INT, eid:INT, lid:INT, cid:STRING");
  EXPECT_EQ(catalog.Get("text_mentions").value()->schema().ToString(),
            "did:INT, sid:INT, mid:INT, lid:INT, eid:INT, span1:INT, "
            "span2:INT");
  EXPECT_EQ(catalog.Get("texts").value()->schema().ToString(),
            "did:INT, lid:INT, chars:STRING");
}

class TextGraphFixture : public ::testing::Test {
 protected:
  void Populate(const std::string& text, NerConfig config = {}) {
    SimulatedNer ner(config);
    Document doc;
    doc.did = 5;
    doc.uri = "doc://5";
    doc.text = text;
    ASSERT_TRUE(ner.PopulateFromDocument(doc, &catalog_, &lineage_).ok());
  }
  rel::Catalog catalog_;
  lineage::LineageStore lineage_;
};

TEST_F(TextGraphFixture, NamedEntitiesExtracted) {
  Populate("Taylor Swift released an album. The gun was a prop.");
  auto ents = catalog_.Get("text_entities").value();
  // "taylor swift" (named) + "gun" (concept).
  ASSERT_GE(ents->num_rows(), 2u);
  bool has_named = false;
  bool has_violence = false;
  for (size_t r = 0; r < ents->num_rows(); ++r) {
    std::string cid = ents->at(r, 3).AsString();
    if (cid == "named_entity") has_named = true;
    if (cid == "violence") has_violence = true;
  }
  EXPECT_TRUE(has_named);
  EXPECT_TRUE(has_violence);
}

TEST_F(TextGraphFixture, CoreferenceSharesEid) {
  Populate("Taylor Swift sang. Mrs. Swift smiled. She bowed.");
  auto mentions = catalog_.Get("text_mentions").value();
  // All three mentions resolve to the same entity id.
  ASSERT_GE(mentions->num_rows(), 3u);
  std::set<int64_t> eids;
  for (size_t r = 0; r < mentions->num_rows(); ++r) {
    eids.insert(mentions->at(r, 4).AsInt());
  }
  EXPECT_EQ(eids.size(), 1u);
}

TEST_F(TextGraphFixture, MentionSpansSliceTheText) {
  std::string text = "Walter Cross met Harriet Vane.";
  Populate(text);
  auto mentions = catalog_.Get("text_mentions").value();
  ASSERT_GE(mentions->num_rows(), 2u);
  size_t s1 = static_cast<size_t>(mentions->at(0, 5).AsInt());
  size_t s2 = static_cast<size_t>(mentions->at(0, 6).AsInt());
  EXPECT_EQ(text.substr(s1, s2 - s1), "Walter Cross");
}

TEST_F(TextGraphFixture, CoOccurrenceRelationships) {
  Populate("Walter Cross met Harriet Vane at the station.");
  auto rels = catalog_.Get("text_relationships").value();
  ASSERT_EQ(rels->num_rows(), 1u);
  EXPECT_EQ(rels->at(0, 5).AsString(), "co_occurs_with");
}

TEST_F(TextGraphFixture, BudgetAttributePattern) {
  Populate("Guilty Pictures spent a budget of 13000000 dollars.");
  auto attrs = catalog_.Get("text_attributes").value();
  ASSERT_EQ(attrs->num_rows(), 1u);
  EXPECT_EQ(attrs->at(0, 4).AsString(), "budget");
  EXPECT_EQ(attrs->at(0, 5).AsString(), "13000000");
}

TEST_F(TextGraphFixture, EntityTokensReadableThroughViews) {
  Populate("Eleanor Finch dodged the explosion near the bridge.");
  auto tokens = EntityTokensOf(5, catalog_);
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  bool has_explosion = false;
  bool has_eleanor = false;
  for (const auto& t : tokens.value()) {
    if (t == "explosion") has_explosion = true;
    if (t == "eleanor") has_eleanor = true;
  }
  EXPECT_TRUE(has_explosion);
  EXPECT_TRUE(has_eleanor);
}

TEST_F(TextGraphFixture, EntityTokensForUnknownDocFails) {
  Populate("Some text.");
  EXPECT_FALSE(EntityTokensOf(999, catalog_).ok());
}

TEST_F(TextGraphFixture, MentionDropNoiseReducesMentions) {
  NerConfig noisy;
  noisy.mention_drop_prob = 0.9;
  noisy.seed = 4;
  Populate("A gun, a knife, a bomb, a chase, an explosion, a murder, "
           "a hostage, a sniper, a shootout and a war.",
           noisy);
  auto mentions = catalog_.Get("text_mentions").value();
  EXPECT_LT(mentions->num_rows(), 6u);
}

TEST_F(TextGraphFixture, AliasMapMergesEntities) {
  NerConfig config;
  config.aliases["the boss"] = "walter cross";
  Populate("Walter Cross runs the firm.");
  auto ents = catalog_.Get("text_entities").value();
  size_t named = 0;
  for (size_t r = 0; r < ents->num_rows(); ++r) {
    if (ents->at(r, 3).AsString() == "named_entity") ++named;
  }
  EXPECT_EQ(named, 1u);
}

}  // namespace
}  // namespace kathdb::mm
