/// \file wire_serde_test.cc
/// \brief Round-trip and rejection tests for the kathdb-wire/1 columnar
/// result encoding (EncodeTableColumnar / DecodeTableColumnar).
///
/// The property under test: for every table the relational layer can
/// represent — every column encoding, NULLs anywhere, dictionary
/// strings (empty / embedded NUL / non-ASCII), zero-copy view slices,
/// schema columns without storage, empty and 1-row and multi-chunk
/// shapes — decode(encode(t)) is logically identical to t (schema,
/// cells, cell types, fingerprint). And for every malformed payload —
/// any truncated prefix, bad type/encoding tags, out-of-range
/// dictionary codes, absurd row/column counts — decode fails with a
/// Status instead of crashing or fabricating rows.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "relational/io.h"
#include "relational/table.h"

namespace kathdb::net {
namespace {

using rel::DataType;
using rel::Schema;
using rel::Table;
using rel::Value;

std::string Encode(const Table& t) {
  PayloadWriter w;
  EncodeTableColumnar(t, &w);
  return w.Take();
}

Result<Table> Decode(const std::string& payload, const std::string& name) {
  PayloadReader r(payload);
  return DecodeTableColumnar(&r, name);
}

/// Logical identity: schema, row count, per-cell value AND value type,
/// and the encoding-independent fingerprint.
void ExpectIdentical(const Table& a, const Table& b) {
  ASSERT_TRUE(a.schema() == b.schema())
      << a.schema().ToString() << " vs " << b.schema().ToString();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      Value va = c < a.num_physical_columns() ? a.at(r, c) : Value::Null();
      Value vb = c < b.num_physical_columns() ? b.at(r, c) : Value::Null();
      EXPECT_EQ(va.type(), vb.type()) << "row " << r << " col " << c;
      EXPECT_EQ(va, vb) << "row " << r << " col " << c;
    }
  }
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

void ExpectRoundTrips(const Table& t) {
  auto decoded = Decode(Encode(t), t.name());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectIdentical(t, *decoded);
}

/// One column of every encoding, NULLs sprinkled through each.
Table MakeAllTypesTable(size_t rows) {
  Schema schema;
  schema.AddColumn("b", DataType::kBool);
  schema.AddColumn("i", DataType::kInt);
  schema.AddColumn("d", DataType::kDouble);
  schema.AddColumn("s", DataType::kString);
  Table t("all_types", schema);
  static const char* kStrings[] = {"", "plain", "uni\xc3\xa7\xc3\xb8" "de",
                                   "embedded\0nul", "trailing "};
  for (size_t r = 0; r < rows; ++r) {
    rel::Row row;
    row.push_back(r % 5 == 0 ? Value::Null() : Value::Bool(r % 2 == 0));
    row.push_back(r % 7 == 0 ? Value::Null()
                             : Value::Int(static_cast<int64_t>(r) * 1'000'003 -
                                          500'000));
    row.push_back(r % 4 == 0 ? Value::Null()
                             : Value::Double(static_cast<double>(r) / 3.0));
    if (r % 6 == 0) {
      row.push_back(Value::Null());
    } else if (r % 11 == 0) {
      row.push_back(Value::Str(std::string("embedded\0nul", 12)));
    } else {
      row.push_back(Value::Str(kStrings[r % 5]));
    }
    t.AppendRow(std::move(row));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Round trips

TEST(WireSerde, EmptyTableRoundTrips) {
  Schema schema;
  schema.AddColumn("x", DataType::kInt);
  schema.AddColumn("y", DataType::kString);
  ExpectRoundTrips(Table("empty", schema));
}

TEST(WireSerde, SingleRowRoundTrips) { ExpectRoundTrips(MakeAllTypesTable(1)); }

TEST(WireSerde, MultiRowAllTypesWithNullsRoundTrips) {
  ExpectRoundTrips(MakeAllTypesTable(200));
}

TEST(WireSerde, AllNullColumnsRoundTrip) {
  Schema schema;
  schema.AddColumn("a", DataType::kInt);
  schema.AddColumn("b", DataType::kString);
  Table t("nulls", schema);
  for (int r = 0; r < 70; ++r) t.AppendRow({Value::Null(), Value::Null()});
  ExpectRoundTrips(t);
}

TEST(WireSerde, SpecialDoublesRoundTripBitExact) {
  Schema schema;
  schema.AddColumn("d", DataType::kDouble);
  Table t("doubles", schema);
  t.AppendRow({Value::Double(0.0)});
  t.AppendRow({Value::Double(-0.0)});
  t.AppendRow({Value::Double(std::numeric_limits<double>::infinity())});
  t.AppendRow({Value::Double(-std::numeric_limits<double>::infinity())});
  t.AppendRow({Value::Double(std::numeric_limits<double>::quiet_NaN())});
  t.AppendRow({Value::Double(std::numeric_limits<double>::denorm_min())});
  t.AppendRow({Value::Null()});

  auto decoded = Decode(Encode(t), "doubles");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->num_rows(), t.num_rows());
  // NaN != NaN under Compare-is-equal? (NaNs compare equal in Value), so
  // check bit patterns through the typed accessor instead.
  for (size_t r = 0; r + 1 < t.num_rows(); ++r) {
    double in = t.at(r, 0).AsDouble();
    double out = decoded->at(r, 0).AsDouble();
    EXPECT_EQ(std::signbit(in), std::signbit(out)) << "row " << r;
    EXPECT_TRUE((std::isnan(in) && std::isnan(out)) || in == out)
        << "row " << r;
  }
  EXPECT_TRUE(decoded->at(t.num_rows() - 1, 0).is_null());
}

TEST(WireSerde, ViewSliceEncodesOnlyItsWindow) {
  Table full = MakeAllTypesTable(300);
  Table view = full.Slice(37, 161);
  ASSERT_TRUE(view.is_view());

  auto decoded = Decode(Encode(view), "slice");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectIdentical(view, *decoded);
}

TEST(WireSerde, SlicedDictColumnRemapsCodesDense) {
  // A 1-row slice of a table with a large dictionary: the wire block
  // must carry only the referenced entry, not the whole parent dict.
  Schema schema;
  schema.AddColumn("s", DataType::kString);
  Table t("dict", schema);
  for (int r = 0; r < 64; ++r) {
    t.AppendRow({Value::Str("value-" + std::to_string(r))});
  }
  Table one = t.Slice(40, 41);
  std::string payload = Encode(one);
  // Encoded payload stays small: schema + 1 validity word + 1 dict entry
  // + 1 code, nowhere near 64 dictionary strings.
  EXPECT_LT(payload.size(), 100u);
  auto decoded = Decode(payload, "one");
  ASSERT_TRUE(decoded.ok());
  ExpectIdentical(one, *decoded);
}

TEST(WireSerde, MixedColumnRoundTrips) {
  Schema schema;
  schema.AddColumn("m", DataType::kString);
  Table t("mixed", schema);
  t.AppendRow({Value::Int(7)});
  t.AppendRow({Value::Str("seven")});  // demotes the column to kMixed
  t.AppendRow({Value::Double(7.5)});
  t.AppendRow({Value::Bool(true)});
  t.AppendRow({Value::Null()});
  ExpectRoundTrips(t);
}

TEST(WireSerde, MissingTrailingColumnReadsAsNull) {
  // Schema wider than physically materialized columns: the missing
  // column travels as an EMPTY block and reads back as NULLs.
  Schema narrow;
  narrow.AddColumn("a", DataType::kInt);
  Table t("t", narrow);
  t.AppendRow({Value::Int(1)});
  t.AppendRow({Value::Int(2)});
  t.mutable_schema()->AddColumn("b", DataType::kString);
  ASSERT_LT(t.num_physical_columns(), t.schema().num_columns());

  auto decoded = Decode(Encode(t), "t");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->num_rows(), 2u);
  EXPECT_EQ(decoded->at(0, 0), Value::Int(1));
  EXPECT_TRUE(decoded->at(0, 1).is_null());
  EXPECT_TRUE(decoded->at(1, 1).is_null());
}

TEST(WireSerde, ZeroColumnTableCarriesRowCount) {
  Table t("empty_schema", Schema());
  for (int i = 0; i < 3; ++i) t.AppendRow({});
  auto decoded = Decode(Encode(t), "empty_schema");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->schema().num_columns(), 0u);
  EXPECT_EQ(decoded->num_rows(), 3u);
}

TEST(WireSerde, MultiChunkReassemblyMatchesWholeTable) {
  // Chunked streaming shape: encode consecutive slices, decode and
  // AppendSlice them back together — the reassembled table must match
  // the original, CSV rendering included.
  Table full = MakeAllTypesTable(100);
  Table rebuilt;
  bool first = true;
  for (size_t begin = 0; begin < full.num_rows(); begin += 7) {
    Table chunk = full.Slice(begin, begin + 7);
    auto decoded = Decode(Encode(chunk), "result");
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    if (first) {
      rebuilt = std::move(*decoded);
      first = false;
    } else {
      ASSERT_TRUE(decoded->schema() == rebuilt.schema());
      rebuilt.AppendSlice(*decoded, 0, decoded->num_rows());
    }
  }
  rebuilt.set_name(full.name());
  ExpectIdentical(full, rebuilt);
  EXPECT_EQ(rel::TableToCsv(full), rel::TableToCsv(rebuilt));
}

TEST(WireSerde, SurvivesAFullFrameRoundTrip) {
  Table t = MakeAllTypesTable(50);
  PayloadWriter w;
  w.PutU64(42);       // query id
  w.PutU32(0);        // seq
  w.PutU64(0);        // row offset
  EncodeTableColumnar(t, &w);
  std::string framed = EncodeFrame(Op::kPartialResultCol, w.Take());

  FrameReader reader(4u << 20);
  reader.Feed(framed.data(), framed.size());
  Frame frame;
  auto got = reader.Next(&frame);
  ASSERT_TRUE(got.ok() && *got);
  ASSERT_EQ(frame.op, Op::kPartialResultCol);
  PayloadReader r(frame.payload);
  ASSERT_TRUE(r.U64().ok() && r.U32().ok() && r.U64().ok());
  auto decoded = DecodeTableColumnar(&r, "all_types");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(r.AtEnd());
  ExpectIdentical(t, *decoded);
}

// ---------------------------------------------------------------------------
// Rejection

TEST(WireSerde, EveryTruncatedPrefixIsRejected) {
  // Each byte of the payload belongs to some required field, so every
  // strict prefix must fail cleanly — no crash, no partial table.
  Table t = MakeAllTypesTable(9);
  std::string payload = Encode(t);
  ASSERT_TRUE(Decode(payload, "t").ok());
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = Decode(payload.substr(0, len), "t");
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireSerde, RejectsBadColumnTypeTag) {
  PayloadWriter w;
  w.PutU32(1);
  w.PutString("c");
  w.PutU8(17);  // DataType tags stop at kString = 4
  auto decoded = Decode(w.Take(), "t");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("type tag"), std::string::npos);
}

TEST(WireSerde, RejectsBadColumnEncodingTag) {
  PayloadWriter w;
  w.PutU32(1);
  w.PutString("c");
  w.PutU8(static_cast<uint8_t>(DataType::kInt));
  w.PutU64(1);  // nrows
  w.PutU8(9);   // encoding tags stop at MIXED = 5
  auto decoded = Decode(w.Take(), "t");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("encoding tag"),
            std::string::npos);
}

TEST(WireSerde, RejectsBadMixedValueTag) {
  PayloadWriter w;
  w.PutU32(1);
  w.PutString("c");
  w.PutU8(static_cast<uint8_t>(DataType::kString));
  w.PutU64(1);    // nrows
  w.PutU8(5);     // MIXED, no-nulls flavor: every row carries a value
  w.PutU8(0);     // tag 0 is not a value type
  auto decoded = Decode(w.Take(), "t");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("mixed value tag"),
            std::string::npos);
}

TEST(WireSerde, RejectsDictionaryCodeOutOfRange) {
  PayloadWriter w;
  w.PutU32(1);
  w.PutString("s");
  w.PutU8(static_cast<uint8_t>(DataType::kString));
  w.PutU64(1);          // nrows
  w.PutU8(4);           // DICT, no-nulls flavor
  w.PutVarint(1);       // one dictionary entry
  w.PutVarint(4);
  w.PutBytes("only", 4);
  w.PutVarint(5);       // code 5 >= dict size 1
  auto decoded = Decode(w.Take(), "t");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("code out of range"),
            std::string::npos);
}

TEST(WireSerde, RejectsDictionaryWiderThanRowCount) {
  PayloadWriter w;
  w.PutU32(1);
  w.PutString("s");
  w.PutU8(static_cast<uint8_t>(DataType::kString));
  w.PutU64(1);     // nrows
  w.PutU8(4);      // DICT, no-nulls flavor
  w.PutVarint(3);  // 3 dict entries for a 1-row chunk: impossible
  auto decoded = Decode(w.Take(), "t");
  ASSERT_FALSE(decoded.ok());
}

TEST(WireSerde, RejectsAbsurdColumnAndRowCounts) {
  {
    PayloadWriter w;
    w.PutU32(100'000);  // columns
    auto decoded = Decode(w.Take(), "t");
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().message().find("columns"), std::string::npos);
  }
  {
    PayloadWriter w;
    w.PutU32(1);
    w.PutString("c");
    w.PutU8(static_cast<uint8_t>(DataType::kInt));
    w.PutU64(uint64_t{1} << 40);  // rows
    auto decoded = Decode(w.Take(), "t");
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().message().find("rows"), std::string::npos);
  }
}

TEST(WireSerde, NullRowsCarryNoDictCodes) {
  // NULL rows carry no payload at all: a nulls-flavored dict block
  // (tag | 0x80, validity words) lists codes for non-NULL rows only,
  // and the NULL row decodes to NULL with its code normalized to 0.
  PayloadWriter w;
  w.PutU32(1);
  w.PutString("s");
  w.PutU8(static_cast<uint8_t>(DataType::kString));
  w.PutU64(2);         // nrows
  w.PutU8(4 | 0x80);   // DICT with NULLs
  w.PutU64(0b01);      // row 0 non-NULL, row 1 NULL
  w.PutVarint(1);      // one dictionary entry
  w.PutVarint(7);
  w.PutBytes("present", 7);
  w.PutVarint(0);      // row 0 -> "present"; row 1 ships nothing
  auto decoded = Decode(w.Take(), "t");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->at(0, 0), Value::Str("present"));
  EXPECT_TRUE(decoded->at(1, 0).is_null());
}

}  // namespace
}  // namespace kathdb::net
