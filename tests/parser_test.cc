// Unit tests for src/parser: NL intent extraction, sketch generation,
// proactive clarification and reactive correction (Figure 4).

#include <gtest/gtest.h>

#include "parser/nl_parser.h"

namespace kathdb::parser {
namespace {

constexpr const char* kPaperQuery =
    "Sort the given films in the table by how exciting they are, but the "
    "poster should be 'boring'";

class ParserFixture : public ::testing::Test {
 protected:
  ParserFixture() : llm_(llm::KathLargeSpec(), &meter_) {
    auto movies = std::make_shared<rel::Table>(
        "movie_table", rel::Schema({{"mid", rel::DataType::kInt},
                                    {"title", rel::DataType::kString},
                                    {"year", rel::DataType::kInt}}));
    movies->AppendRow({rel::Value::Int(1), rel::Value::Str("X"),
                       rel::Value::Int(1990)});
    (void)catalog_.Register(movies);
  }

  llm::UsageMeter meter_;
  llm::SimulatedLLM llm_;
  rel::Catalog catalog_;
};

TEST_F(ParserFixture, InterpretsThePaperQuery) {
  llm::ScriptedUser user;
  NlParser parser(&llm_, &user, &catalog_);
  auto intent = parser.InterpretQuery(kPaperQuery);
  ASSERT_TRUE(intent.ok()) << intent.status().ToString();
  EXPECT_EQ(intent->action, "sort");
  EXPECT_EQ(intent->table, "movie_table");
  const Criterion* rank = intent->FindByRole("rank");
  ASSERT_NE(rank, nullptr);
  EXPECT_EQ(rank->term, "exciting");
  EXPECT_EQ(rank->modality, "text");
  const Criterion* filter = intent->FindByRole("filter");
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->term, "boring");
  EXPECT_EQ(filter->modality, "image");
}

TEST_F(ParserFixture, EmptyQueryRejected) {
  llm::ScriptedUser user;
  NlParser parser(&llm_, &user, &catalog_);
  EXPECT_FALSE(parser.InterpretQuery("").ok());
}

TEST_F(ParserFixture, PlainMetadataQueryGetsRecencyCriterion) {
  llm::ScriptedUser user;
  NlParser parser(&llm_, &user, &catalog_);
  auto intent = parser.InterpretQuery("Sort the films in the table");
  ASSERT_TRUE(intent.ok());
  const Criterion* rank = intent->FindByRole("rank");
  ASSERT_NE(rank, nullptr);
  EXPECT_EQ(rank->modality, "metadata");
}

TEST_F(ParserFixture, SketchV1HasEightSteps) {
  llm::ScriptedUser user;
  NlParser parser(&llm_, &user, &catalog_);
  auto intent = parser.InterpretQuery(kPaperQuery);
  ASSERT_TRUE(intent.ok());
  QuerySketch sketch = parser.GenerateSketch(intent.value(), 1);
  EXPECT_EQ(sketch.steps.size(), 8u);  // §6: initial sketch has 8 steps
  EXPECT_EQ(sketch.version, 1);
}

TEST_F(ParserFixture, RecencyFeedbackGrowsSketchToEleven) {
  llm::ScriptedUser user;
  NlParser parser(&llm_, &user, &catalog_);
  auto intent = parser.InterpretQuery(kPaperQuery);
  ASSERT_TRUE(intent.ok());
  QueryIntent updated = intent.value();
  EXPECT_TRUE(parser.ApplyFeedback("I prefer more recent movies when "
                                   "scoring",
                                   &updated));
  QuerySketch sketch = parser.GenerateSketch(updated, 2);
  EXPECT_EQ(sketch.steps.size(), 11u);  // §6: updated sketch has 11 steps
  // Weights follow the correction: content 0.7, recency 0.3.
  const Criterion* rank = updated.FindByRole("rank");
  const Criterion* rec = updated.FindByTerm("recent");
  ASSERT_NE(rank, nullptr);
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(rank->weight, 0.7);
  EXPECT_DOUBLE_EQ(rec->weight, 0.3);
}

TEST_F(ParserFixture, OkFeedbackChangesNothing) {
  llm::ScriptedUser user;
  NlParser parser(&llm_, &user, &catalog_);
  auto intent = parser.InterpretQuery(kPaperQuery);
  ASSERT_TRUE(intent.ok());
  QueryIntent updated = intent.value();
  EXPECT_FALSE(parser.ApplyFeedback("OK", &updated));
  EXPECT_FALSE(parser.ApplyFeedback("  ok  ", &updated));
}

TEST_F(ParserFixture, DuplicateRecencyFeedbackIsIdempotent) {
  llm::ScriptedUser user;
  NlParser parser(&llm_, &user, &catalog_);
  auto intent = parser.InterpretQuery(kPaperQuery);
  ASSERT_TRUE(intent.ok());
  QueryIntent updated = intent.value();
  ASSERT_TRUE(parser.ApplyFeedback("prefer recent ones", &updated));
  size_t criteria = updated.criteria.size();
  EXPECT_FALSE(parser.ApplyFeedback("again, newer please", &updated));
  EXPECT_EQ(updated.criteria.size(), criteria);
}

TEST_F(ParserFixture, ProactiveClarificationStoresTheAnswer) {
  llm::ScriptedUser user({"plots with uncommon scenes", "OK"});
  NlParser parser(&llm_, &user, &catalog_);
  auto sketch = parser.Parse(kPaperQuery);
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
  const Criterion* rank = parser.intent().FindByRole("rank");
  ASSERT_NE(rank, nullptr);
  EXPECT_EQ(rank->clarified_meaning, "plots with uncommon scenes");
  // The first question was the focused clarification of Figure 4.
  ASSERT_FALSE(user.history().empty());
  EXPECT_EQ(user.history()[0].question,
            "What does 'exciting' mean in this context?");
}

TEST_F(ParserFixture, ReactiveCorrectionProducesSecondSketchVersion) {
  llm::ScriptedUser user({"uncommon scenes", "I prefer more recent movies",
                          "OK"});
  NlParser parser(&llm_, &user, &catalog_);
  auto sketch = parser.Parse(kPaperQuery);
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch->version, 2);
  ASSERT_EQ(parser.sketch_history().size(), 2u);
  EXPECT_EQ(parser.sketch_history()[0].steps.size(), 8u);
  EXPECT_EQ(parser.sketch_history()[1].steps.size(), 11u);
}

TEST_F(ParserFixture, NonStructuralFeedbackIsAcknowledged) {
  llm::ScriptedUser user({"uncommon scenes",
                          "please be quick about it",  // no-op feedback
                          "OK"});
  NlParser parser(&llm_, &user, &catalog_);
  auto sketch = parser.Parse(kPaperQuery);
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch->version, 1);  // no structural change
  bool notified = false;
  for (const auto& e : user.history()) {
    if (e.question.find("Noted") != std::string::npos) notified = true;
  }
  EXPECT_TRUE(notified);
}

TEST_F(ParserFixture, SketchTextRendersNumberedSteps) {
  llm::ScriptedUser user;
  NlParser parser(&llm_, &user, &catalog_);
  auto intent = parser.InterpretQuery(kPaperQuery);
  ASSERT_TRUE(intent.ok());
  std::string text = parser.GenerateSketch(intent.value(), 1).ToText();
  EXPECT_NE(text.find("1. "), std::string::npos);
  EXPECT_NE(text.find("8. "), std::string::npos);
  EXPECT_NE(text.find("exciting"), std::string::npos);
}

// Sweep: different subjective rank terms all produce valid sketches.
class TermSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(TermSweep, SketchGeneratedForAnySubjectiveTerm) {
  llm::UsageMeter meter;
  llm::SimulatedLLM llm(llm::KathLargeSpec(), &meter);
  rel::Catalog catalog;
  auto movies = std::make_shared<rel::Table>(
      "movie_table", rel::Schema({{"title", rel::DataType::kString}}));
  (void)catalog.Register(movies);
  llm::ScriptedUser user;
  NlParser parser(&llm, &user, &catalog);
  std::string query = std::string("Sort the films by how ") + GetParam() +
                      " they are";
  auto intent = parser.InterpretQuery(query);
  ASSERT_TRUE(intent.ok());
  QuerySketch sketch = parser.GenerateSketch(intent.value(), 1);
  EXPECT_GE(sketch.steps.size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Terms, TermSweep,
                         ::testing::Values("exciting", "scary", "fun",
                                           "memorable", "interesting"));

}  // namespace
}  // namespace kathdb::parser
