/// Negative compile check: calling a KATHDB_REQUIRES(mu_) helper without
/// holding the mutex must be rejected by -Werror=thread-safety.
/// Built only via the compile_fail_requires_not_held ctest entry (clang,
/// KATHDB_COMPILE_FAIL_TESTS=ON), which passes when this FAILS to build.

#include "common/sync.h"

namespace {

class Store {
 public:
  int Get() const {
    return GetLocked();  // expected-error: requires mu_ which is not held
  }

 private:
  int GetLocked() const KATHDB_REQUIRES(mu_) { return value_; }

  mutable kathdb::common::Mutex mu_;
  int value_ KATHDB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Store s;
  return s.Get();
}
