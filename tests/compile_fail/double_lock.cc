/// Negative compile check: acquiring a mutex already held on the same
/// path (self-deadlock) must be rejected by -Werror=thread-safety.
/// Built only via the compile_fail_double_lock ctest entry (clang,
/// KATHDB_COMPILE_FAIL_TESTS=ON), which passes when this FAILS to build.

#include "common/sync.h"

namespace {

class Widget {
 public:
  void Touch() KATHDB_EXCLUDES(mu_) {
    kathdb::common::MutexLock outer(mu_);
    kathdb::common::MutexLock inner(mu_);  // expected-error: already held
    ++value_;
  }

 private:
  kathdb::common::Mutex mu_;
  int value_ KATHDB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Widget w;
  w.Touch();
  return 0;
}
