/// Negative compile check: writing a guarded member while holding only a
/// ReaderLock (shared capability) must be rejected by
/// -Werror=thread-safety — mutation needs the exclusive capability.
/// Built only via the compile_fail_shared_write ctest entry (clang,
/// KATHDB_COMPILE_FAIL_TESTS=ON), which passes when this FAILS to build.

#include "common/sync.h"

namespace {

class Registry {
 public:
  void Mutate() KATHDB_EXCLUDES(mu_) {
    kathdb::common::ReaderLock lock(mu_);
    ++value_;  // expected-error: shared lock cannot justify a write
  }

 private:
  kathdb::common::SharedMutex mu_;
  int value_ KATHDB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Registry r;
  r.Mutate();
  return 0;
}
