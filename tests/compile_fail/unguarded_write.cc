/// Negative compile check: writing a KATHDB_GUARDED_BY member without
/// holding its mutex must be rejected by -Werror=thread-safety.
/// Built only via the compile_fail_unguarded_write ctest entry (clang,
/// KATHDB_COMPILE_FAIL_TESTS=ON), which passes when this FAILS to build.

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Bump() {  // missing MutexLock / KATHDB_REQUIRES(mu_)
    ++value_;    // expected-error: writing guarded field
  }

 private:
  kathdb::common::Mutex mu_;
  int value_ KATHDB_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
