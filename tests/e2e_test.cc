// End-to-end integration tests: the full §6 pipeline over the synthetic
// MMQA corpus, reproducing the Figure 4/6 behaviour.

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "data/movie_dataset.h"
#include "engine/kathdb.h"

namespace kathdb {
namespace {

using data::DatasetOptions;
using data::GenerateMovieDataset;
using data::IngestDataset;
using engine::KathDB;
using engine::KathDBOptions;
using engine::QueryOutcome;

constexpr const char* kPaperQuery =
    "Sort the given films in the table by how exciting they are, but the "
    "poster should be 'boring'";

class E2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetOptions opts;
    opts.num_movies = 30;
    auto ds = GenerateMovieDataset(opts);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::move(ds).value();
    db_ = std::make_unique<KathDB>();
    ASSERT_TRUE(IngestDataset(dataset_, db_.get()).ok());
  }

  Result<QueryOutcome> RunPaperQuery() {
    // §6 scripted user: clarification reply, then the recency correction,
    // then acceptance.
    user_ = std::make_unique<llm::ScriptedUser>(std::vector<std::string>{
        "The movie plot contains scenes that are uncommon in real life",
        "I prefer more recent movies when scoring", "OK"});
    return db_->Query(kPaperQuery, user_.get());
  }

  data::MovieDataset dataset_;
  std::unique_ptr<KathDB> db_;
  std::unique_ptr<llm::ScriptedUser> user_;
};

TEST_F(E2ETest, IngestionPopulatesViews) {
  EXPECT_TRUE(db_->catalog()->Has("movie_table"));
  EXPECT_TRUE(db_->catalog()->Has("text_entities"));
  EXPECT_TRUE(db_->catalog()->Has("scene_objects"));
  auto ents = db_->catalog()->Get("text_entities");
  ASSERT_TRUE(ents.ok());
  EXPECT_GT(ents.value()->num_rows(), 30u);  // >1 entity per plot
  auto objs = db_->catalog()->Get("scene_objects");
  ASSERT_TRUE(objs.ok());
  EXPECT_GT(objs.value()->num_rows(), 20u);
}

TEST_F(E2ETest, PaperQueryRunsEndToEnd) {
  auto outcome = RunPaperQuery();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const rel::Table& result = outcome->result;
  ASSERT_GT(result.num_rows(), 0u);
  // Everything that survived the filter has a boring poster.
  auto bidx = result.schema().IndexOf("boring_poster");
  ASSERT_TRUE(bidx.has_value());
  for (size_t r = 0; r < result.num_rows(); ++r) {
    EXPECT_TRUE(result.at(r, *bidx).AsBool());
  }
}

TEST_F(E2ETest, Figure6TopTwoAreTheAnchors) {
  auto outcome = RunPaperQuery();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const rel::Table& result = outcome->result;
  ASSERT_GE(result.num_rows(), 2u);
  auto tidx = result.schema().IndexOf("title");
  ASSERT_TRUE(tidx.has_value());
  EXPECT_EQ(result.at(0, *tidx).AsString(), "Guilty by Suspicion");
  EXPECT_EQ(result.at(1, *tidx).AsString(), "Clean and Sober");
  // Scores ordered and near the paper's magnitudes (0.999… vs 0.973…).
  auto fidx = result.schema().IndexOf("final_score");
  ASSERT_TRUE(fidx.has_value());
  double s0 = result.at(0, *fidx).AsDouble();
  double s1 = result.at(1, *fidx).AsDouble();
  EXPECT_GT(s0, s1);
  EXPECT_GT(s0, 0.95);
  EXPECT_GT(s1, 0.90);
}

TEST_F(E2ETest, SketchGrowsFrom8To11Steps) {
  auto outcome = RunPaperQuery();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Final (accepted) sketch is v2 with 11 steps (Figure 4 / §6).
  EXPECT_EQ(outcome->sketch.version, 2);
  EXPECT_EQ(outcome->sketch.steps.size(), 11u);
}

TEST_F(E2ETest, LogicalPlanHasTenNodes) {
  auto outcome = RunPaperQuery();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // §6: view population is pre-registered, leaving 10 plan nodes.
  EXPECT_EQ(outcome->logical_plan.nodes.size(), 10u);
  EXPECT_NE(outcome->logical_plan.ProducerOf("films_with_boring_flag"),
            nullptr);
}

TEST_F(E2ETest, ResultRowsCarryLineage) {
  auto outcome = RunPaperQuery();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const rel::Table& result = outcome->result;
  ASSERT_GT(result.num_rows(), 0u);
  int64_t lid = result.row_lid(0);
  ASSERT_NE(lid, 0);
  // The top tuple traces back to external sources.
  auto chain = db_->lineage()->TraceToSources(lid);
  EXPECT_GT(chain.size(), 2u);
  bool reaches_source = false;
  for (const auto& e : chain) {
    if (!e.src_uri.empty()) reaches_source = true;
  }
  EXPECT_TRUE(reaches_source);
}

TEST_F(E2ETest, ExplanationsRender) {
  auto outcome = RunPaperQuery();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto coarse = db_->ExplainPipeline();
  ASSERT_TRUE(coarse.ok()) << coarse.status().ToString();
  EXPECT_NE(coarse.value().find("rank_films"), std::string::npos);

  int64_t lid = outcome->result.row_lid(0);
  auto fine = db_->ExplainTuple(lid);
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_NE(fine.value().find("final_score"), std::string::npos);
  EXPECT_NE(fine.value().find("weighted sum"), std::string::npos);

  auto nl = db_->AskExplanation("Explain tuple " + std::to_string(lid) +
                                " please");
  ASSERT_TRUE(nl.ok()) << nl.status().ToString();
}

TEST_F(E2ETest, TokensAreMetered) {
  auto outcome = RunPaperQuery();
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(db_->meter()->total_calls(), 10);
  EXPECT_GT(db_->meter()->total_tokens(), 500);
  EXPECT_GT(db_->meter()->total_cost_usd(), 0.0);
}

TEST_F(E2ETest, FunctionsPersistToDisk) {
  auto outcome = RunPaperQuery();
  ASSERT_TRUE(outcome.ok());
  std::string dir = ::testing::TempDir() + "/kathdb_funcs";
  ASSERT_TRUE(db_->SaveFunctions(dir).ok());
  fao::FunctionRegistry loaded;
  ASSERT_TRUE(loaded.LoadFromDir(dir).ok());
  EXPECT_EQ(loaded.num_functions(), db_->registry()->num_functions());
  auto rank = loaded.Latest("rank_films");
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank.value().template_id, "sql");
}

TEST_F(E2ETest, UserSawClarificationAndCorrectionQuestions) {
  auto outcome = RunPaperQuery();
  ASSERT_TRUE(outcome.ok());
  ASSERT_GE(user_->history().size(), 2u);
  EXPECT_NE(user_->history()[0].question.find("exciting"),
            std::string::npos);
  EXPECT_NE(user_->history()[0].question.find("mean in this context"),
            std::string::npos);
}

// ---- baselines over the same corpus ------------------------------------

TEST_F(E2ETest, BaselinesProduceComparableOutcomes) {
  auto kath = RunPaperQuery();
  ASSERT_TRUE(kath.ok());

  baseline::BlackboxLlmBaseline blackbox(0.8);
  auto bb = blackbox.Run(dataset_);
  ASSERT_TRUE(bb.ok()) << bb.status().ToString();
  EXPECT_FALSE(bb->explainable);
  EXPECT_GT(bb->tokens_used, 500);

  baseline::SqlUdfBaseline sqludf;
  auto su = sqludf.Run(db_.get(), dataset_);
  ASSERT_TRUE(su.ok()) << su.status().ToString();
  EXPECT_GT(su->user_authored_statements, 4);
  ASSERT_GE(su->ranking.size(), 2u);
  // The expert pipeline finds the same top movie.
  auto midx = kath->result.schema().IndexOf("mid");
  ASSERT_TRUE(midx.has_value());
  EXPECT_EQ(su->ranking[0], kath->result.at(0, *midx).AsInt());
}

}  // namespace
}  // namespace kathdb
